//! Query-plan IR: the evaluation-ready lowering of a `CompiledRule`.
//!
//! The analyzer resolves *names*; this module resolves *shape*. A
//! [`RulePlan`] flattens the rule's `and`-tree into an ordered list of
//! conjunct steps, reorders them by estimated selectivity (cheap,
//! highly-filtering predicates first), and interns every actor-type and
//! function name into small symbol tables so the evaluator never touches a
//! string. The EMR binds the symbol tables to runtime `ActorTypeId`/`FnId`
//! values once per decision round; evaluation is then purely integer-keyed.
//!
//! # Why reordering is sound
//!
//! The evaluator threads partial environments left-to-right through the
//! conjunction and deduplicates the environment set after every predicate,
//! so the *set* of satisfying environments is insensitive to the order of
//! two conjuncts unless they interact through shared state. Two conjuncts
//! interact iff they share a variable slot, or one may *bind* the server
//! coordinate (`server.res` predicates) while the other reads it
//! (actor-resource and call predicates restrict candidates to the bound
//! server). The scheduler performs a stable topological sort that only
//! moves a conjunct ahead of another when they provably do not interact,
//! picking the cheapest ready conjunct at each step and breaking ties by
//! source order — so plans are deterministic and decisions are bit-for-bit
//! identical to the unplanned evaluator.

use std::collections::BTreeSet;

use crate::analyze::VarDecl;
use crate::ast::{AType, ActorRef, Caller, Comp, Cond, Feature, Res, Stat};

/// Index into [`RulePlan::type_syms`].
pub type TypeSym = u32;
/// Index into [`RulePlan::fn_syms`].
pub type FnSym = u32;

/// A resolved actor-type pattern: wildcard or an interned type name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypePat {
    /// Matches every actor type (`any`).
    Any,
    /// Matches one named type (index into [`RulePlan::type_syms`]).
    Sym(TypeSym),
}

/// A lowered actor reference: variable slot plus type pattern.
///
/// `slot` is `Some` for `Type(v)` / bare-`v` references (the rule-local
/// variable slot the match binds or reads) and `None` for anonymous typed
/// references.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefPlan {
    /// Variable slot in the rule's environment, if the reference is named.
    pub slot: Option<usize>,
    /// The declared type pattern candidates must match.
    pub ty: TypePat,
}

/// A lowered caller position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallerPlan {
    /// External clients.
    Client,
    /// A calling actor.
    Actor(RefPlan),
}

/// A lowered feature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FeatPlan {
    /// `server.res`.
    ServerRes(Res),
    /// `actor.res`.
    ActorRes(RefPlan, Res),
    /// `cllr.call(actor.fname)` with the function name interned.
    Call {
        /// The caller position.
        caller: CallerPlan,
        /// The callee actor.
        callee: RefPlan,
        /// Interned function name (index into [`RulePlan::fn_syms`]).
        fname: FnSym,
    },
}

/// One scheduled conjunct.
#[derive(Clone, Debug, PartialEq)]
pub enum StepCond {
    /// `true` — the trivially satisfied plan.
    True,
    /// `feat.stat comp val`.
    Compare {
        /// The measured feature.
        feat: FeatPlan,
        /// Which statistic of it.
        stat: Stat,
        /// Comparison operator.
        comp: Comp,
        /// Bound value.
        val: f64,
    },
    /// `member in ref(owner.prop)`.
    InRef {
        /// The member actor.
        member: RefPlan,
        /// The owning actor.
        owner: RefPlan,
        /// The reference property on the owner.
        prop: String,
    },
    /// A disjunction: each branch is an independently scheduled sub-plan.
    Or(Vec<CondPlan>),
}

/// An ordered conjunction of steps. Evaluation threads environments through
/// `steps` front to back.
#[derive(Clone, Debug, PartialEq)]
pub struct CondPlan {
    /// Conjuncts in scheduled (selectivity) order.
    pub steps: Vec<StepCond>,
}

/// The full evaluation plan for one rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RulePlan {
    /// The scheduled condition.
    pub cond: CondPlan,
    /// Actor-type names referenced by the condition, deduplicated.
    pub type_syms: Vec<String>,
    /// Function names referenced by the condition, deduplicated.
    pub fn_syms: Vec<String>,
    /// Number of variable slots in the rule's environment.
    pub nvars: usize,
}

impl RulePlan {
    /// Lowers a resolved condition and variable table into a plan.
    pub fn build(cond: &Cond, vars: &[VarDecl]) -> RulePlan {
        let mut cx = PlanCx {
            vars,
            type_syms: Vec::new(),
            fn_syms: Vec::new(),
        };
        let plan = lower_cond(&mut cx, cond);
        RulePlan {
            cond: plan,
            type_syms: cx.type_syms,
            fn_syms: cx.fn_syms,
            nvars: vars.len(),
        }
    }
}

struct PlanCx<'a> {
    vars: &'a [VarDecl],
    type_syms: Vec<String>,
    fn_syms: Vec<String>,
}

impl PlanCx<'_> {
    fn type_pat(&mut self, t: &AType) -> TypePat {
        match t {
            AType::Any => TypePat::Any,
            AType::Named(name) => TypePat::Sym(intern(&mut self.type_syms, name)),
        }
    }

    fn fn_sym(&mut self, name: &str) -> FnSym {
        intern(&mut self.fn_syms, name)
    }

    fn lower_ref(&mut self, aref: &ActorRef) -> RefPlan {
        let (slot, ty) = match aref {
            ActorRef::Decl(t, v) => (self.slot_of(v), t.clone()),
            ActorRef::Type(t) => (None, t.clone()),
            ActorRef::Var(v) => (
                self.slot_of(v),
                self.vars
                    .iter()
                    .find(|d| &d.name == v)
                    .map(|d| d.atype.clone())
                    .unwrap_or(AType::Any),
            ),
        };
        RefPlan {
            slot,
            ty: self.type_pat(&ty),
        }
    }

    fn slot_of(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|d| d.name == name)
    }
}

fn intern(table: &mut Vec<String>, name: &str) -> u32 {
    if let Some(i) = table.iter().position(|s| s == name) {
        return i as u32;
    }
    table.push(name.to_string());
    (table.len() - 1) as u32
}

/// Flattens the `and`-tree of `cond` into conjuncts (left-to-right source
/// order), lowers each, then schedules them.
fn lower_cond(cx: &mut PlanCx<'_>, cond: &Cond) -> CondPlan {
    let mut conjuncts = Vec::new();
    flatten_and(cond, &mut conjuncts);
    let mut steps: Vec<StepCond> = conjuncts.iter().map(|c| lower_pred(cx, c)).collect();
    // `true` conjuncts are identities under conjunction; drop them unless
    // the whole condition is trivial.
    if steps.iter().any(|s| !matches!(s, StepCond::True)) {
        steps.retain(|s| !matches!(s, StepCond::True));
    } else {
        steps.truncate(1);
    }
    CondPlan {
        steps: schedule(steps),
    }
}

fn flatten_and<'c>(cond: &'c Cond, out: &mut Vec<&'c Cond>) {
    match cond {
        Cond::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// Lowers one non-`and` conjunct.
fn lower_pred(cx: &mut PlanCx<'_>, cond: &Cond) -> StepCond {
    match cond {
        Cond::True => StepCond::True,
        Cond::And(..) => unreachable!("flatten_and removes nested conjunctions"),
        Cond::Or(a, b) => {
            // Collect the whole `or`-spine so `a or b or c` becomes one
            // three-branch disjunction rather than nested pairs.
            let mut branches = Vec::new();
            flatten_or(a, cx, &mut branches);
            flatten_or(b, cx, &mut branches);
            StepCond::Or(branches)
        }
        Cond::Compare {
            feat,
            stat,
            comp,
            val,
        } => {
            let feat = match feat {
                Feature::ServerRes(r) => FeatPlan::ServerRes(*r),
                Feature::ActorRes(a, r) => FeatPlan::ActorRes(cx.lower_ref(a), *r),
                Feature::Call {
                    caller,
                    callee,
                    fname,
                } => FeatPlan::Call {
                    caller: match caller {
                        Caller::Client => CallerPlan::Client,
                        Caller::Actor(a) => CallerPlan::Actor(cx.lower_ref(a)),
                    },
                    callee: cx.lower_ref(callee),
                    fname: cx.fn_sym(fname),
                },
            };
            StepCond::Compare {
                feat,
                stat: *stat,
                comp: *comp,
                val: *val,
            }
        }
        Cond::InRef {
            member,
            owner,
            prop,
        } => StepCond::InRef {
            member: cx.lower_ref(member),
            owner: cx.lower_ref(owner),
            prop: prop.clone(),
        },
    }
}

fn flatten_or(cond: &Cond, cx: &mut PlanCx<'_>, out: &mut Vec<CondPlan>) {
    match cond {
        Cond::Or(a, b) => {
            flatten_or(a, cx, out);
            flatten_or(b, cx, out);
        }
        other => out.push(lower_cond(cx, other)),
    }
}

/// What a step reads/writes, for the interference analysis.
#[derive(Default)]
struct Effects {
    reads_server: bool,
    writes_server: bool,
    slots: BTreeSet<usize>,
}

impl Effects {
    fn interferes(&self, other: &Effects) -> bool {
        if self.slots.intersection(&other.slots).next().is_some() {
            return true;
        }
        (self.writes_server && (other.reads_server || other.writes_server))
            || (other.writes_server && (self.reads_server || self.writes_server))
    }
}

fn ref_slot(effects: &mut Effects, r: &RefPlan) {
    if let Some(s) = r.slot {
        effects.slots.insert(s);
    }
}

fn effects_of(step: &StepCond) -> Effects {
    let mut e = Effects::default();
    collect_effects(step, &mut e);
    e
}

fn collect_effects(step: &StepCond, e: &mut Effects) {
    match step {
        StepCond::True => {}
        StepCond::Compare { feat, .. } => match feat {
            // `server.res` binds the environment's server coordinate.
            FeatPlan::ServerRes(_) => {
                e.reads_server = true;
                e.writes_server = true;
            }
            // Actor-resource candidates are restricted to a bound server.
            FeatPlan::ActorRes(a, _) => {
                e.reads_server = true;
                ref_slot(e, a);
            }
            // Callee candidates are restricted to a bound server; the
            // caller side is not.
            FeatPlan::Call { caller, callee, .. } => {
                e.reads_server = true;
                ref_slot(e, callee);
                if let CallerPlan::Actor(a) = caller {
                    ref_slot(e, a);
                }
            }
        },
        StepCond::InRef { member, owner, .. } => {
            ref_slot(e, member);
            ref_slot(e, owner);
        }
        StepCond::Or(branches) => {
            for b in branches {
                for s in &b.steps {
                    collect_effects(s, e);
                }
            }
        }
    }
}

/// Estimated evaluation cost: lower runs earlier when reordering is sound.
/// Server predicates enumerate servers (few), actor-resource predicates use
/// the stat-sorted index, `in ref` walks reference lists, and call
/// predicates walk per-caller counter maps (the most expensive).
fn cost_of(step: &StepCond) -> u32 {
    match step {
        StepCond::True => 0,
        StepCond::Compare { feat, .. } => match feat {
            FeatPlan::ServerRes(_) => 10,
            FeatPlan::ActorRes(..) => 20,
            FeatPlan::Call { caller, .. } => match caller {
                CallerPlan::Client => 40,
                CallerPlan::Actor(_) => 50,
            },
        },
        StepCond::InRef { .. } => 30,
        StepCond::Or(branches) => {
            5 + branches
                .iter()
                .flat_map(|b| b.steps.iter())
                .map(cost_of)
                .max()
                .unwrap_or(0)
        }
    }
}

/// Stable selectivity scheduling: repeatedly emit the cheapest step whose
/// interfering predecessors have all been emitted; ties break on source
/// order. The earliest unemitted step is always ready, so this terminates.
fn schedule(steps: Vec<StepCond>) -> Vec<StepCond> {
    let n = steps.len();
    if n <= 1 {
        return steps;
    }
    let effects: Vec<Effects> = steps.iter().map(effects_of).collect();
    let costs: Vec<u32> = steps.iter().map(cost_of).collect();
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if emitted[i] {
                continue;
            }
            let ready = (0..i).all(|j| emitted[j] || !effects[j].interferes(&effects[i]));
            if ready && best.is_none_or(|b| costs[i] < costs[b]) {
                best = Some(i);
            }
        }
        let pick = best.expect("at least the earliest unemitted step is ready");
        emitted[pick] = true;
        order.push(pick);
    }
    let mut slots: Vec<Option<StepCond>> = steps.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|i| slots[i].take().expect("each step emitted once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse_policy;
    use crate::schema::ActorSchema;

    fn schema() -> ActorSchema {
        let mut s = ActorSchema::new();
        s.actor_type("Folder").prop("files").func("open");
        s.actor_type("File").func("read");
        s
    }

    fn plan_of(src: &str) -> RulePlan {
        let policy = parse_policy(src).unwrap();
        let compiled = analyze(&policy, &schema()).unwrap();
        compiled.rules[0].plan.clone()
    }

    #[test]
    fn trivial_condition_lowers_to_true() {
        let p = plan_of("true => pin(Folder);");
        assert_eq!(p.cond.steps, vec![StepCond::True]);
        assert!(p.type_syms.is_empty());
        assert!(p.fn_syms.is_empty());
    }

    #[test]
    fn names_are_interned_once() {
        let p = plan_of(
            "client.call(Folder(f).open).count > 1 and client.call(Folder(f).open).size > 9 \
             => pin(f);",
        );
        assert_eq!(p.type_syms, vec!["Folder".to_string()]);
        assert_eq!(p.fn_syms, vec!["open".to_string()]);
        assert_eq!(p.nvars, 1);
    }

    #[test]
    fn server_bind_stays_ahead_of_dependent_actor_predicates() {
        // The call predicate reads the server binding the first conjunct
        // writes; reordering would change semantics, so source order holds.
        let p = plan_of(
            "server.cpu.perc > 80 and client.call(Folder(f).open).perc > 40 => reserve(f, cpu);",
        );
        assert!(matches!(
            p.cond.steps[0],
            StepCond::Compare {
                feat: FeatPlan::ServerRes(Res::Cpu),
                ..
            }
        ));
        assert!(matches!(
            p.cond.steps[1],
            StepCond::Compare {
                feat: FeatPlan::Call { .. },
                ..
            }
        ));
    }

    #[test]
    fn independent_cheap_predicate_moves_first() {
        // `in ref` (cost 30) and the call predicate (cost 40) share the
        // slots of `fo`/`fi`... so use disjoint variables to let the
        // scheduler hoist the cheaper containment check.
        let p = plan_of(
            "client.call(Folder(a).open).count > 0 and File(m) in ref(Folder(o).files) \
             => colocate(o, m);",
        );
        assert!(
            matches!(p.cond.steps[0], StepCond::InRef { .. }),
            "expected InRef first, got {:?}",
            p.cond.steps
        );
    }

    #[test]
    fn shared_slots_preserve_source_order() {
        let p = plan_of(
            "client.call(Folder(f).open).count > 0 and File(m) in ref(f.files) \
             => colocate(f, m);",
        );
        assert!(
            matches!(p.cond.steps[0], StepCond::Compare { .. }),
            "shared slot must keep source order, got {:?}",
            p.cond.steps
        );
    }

    #[test]
    fn or_branches_are_sub_plans() {
        let p = plan_of(
            "server.cpu.perc > 90 or server.mem.perc > 90 or server.net.perc > 90 \
             => balance({Folder}, cpu);",
        );
        match &p.cond.steps[0] {
            StepCond::Or(branches) => assert_eq!(branches.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
    }
}
