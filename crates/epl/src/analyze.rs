//! Semantic analysis: name resolution, implicit variable declaration, and
//! applicability checks; lowers a parsed [`Policy`] to a [`CompiledPolicy`].
//!
//! Resolution rules (from §3.2 of the paper):
//!
//! - `Type(v)` *declares* variable `v` of type `Type`, anywhere in the rule
//!   (condition or behavior). Rules are independent scopes.
//! - A bare identifier in actor position is the declared variable of that
//!   name if one exists in the rule; otherwise it must name a schema type.
//! - `any` matches all actor types.
//! - Statistics must apply to their feature: resource features support
//!   `perc` (plus `size` for `mem`); interaction features support `count`,
//!   `size` and `perc`.

use std::collections::BTreeMap;

use crate::ast::{AType, ActorRef, Behavior, Caller, Cond, Feature, Policy, Res, Rule, Stat};
use crate::error::{SemanticError, Warning};
use crate::plan::RulePlan;
use crate::schema::ActorSchema;

/// A variable declared inline in a rule.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared actor type.
    pub atype: AType,
}

/// A behavior with its resolved priority and classification.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledBehavior {
    /// The (resolved) behavior.
    pub behavior: Behavior,
    /// Conflict-resolution priority (higher wins).
    pub priority: u32,
    /// `true` for resource rules `[r-r]` (GEM-side), `false` for
    /// interaction rules `[r-i]` (LEM-side).
    pub is_resource: bool,
}

/// One analyzed rule.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledRule {
    /// 0-based index in the source policy.
    pub index: usize,
    /// Resolved condition: every bare identifier rewritten to `Var` or
    /// `Type(Named)` definitively.
    pub cond: Cond,
    /// Resolved behaviors with priorities.
    pub behaviors: Vec<CompiledBehavior>,
    /// The rule's variable table, in declaration order.
    pub vars: Vec<VarDecl>,
    /// Evaluation-ready query plan lowered from `cond`.
    pub plan: RulePlan,
}

impl CompiledRule {
    /// Returns the declared type of a resolved actor reference.
    pub fn ref_type(&self, aref: &ActorRef) -> AType {
        match aref {
            ActorRef::Decl(t, _) => t.clone(),
            ActorRef::Type(t) => t.clone(),
            ActorRef::Var(v) => self
                .vars
                .iter()
                .find(|d| &d.name == v)
                .map(|d| d.atype.clone())
                .unwrap_or(AType::Any),
        }
    }

    /// Returns the slot index of variable `name`, if declared.
    pub fn var_slot(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|d| d.name == name)
    }

    /// Returns whether any behavior of this rule is a resource behavior.
    pub fn has_resource_behavior(&self) -> bool {
        self.behaviors.iter().any(|b| b.is_resource)
    }

    /// Returns whether any behavior of this rule is an interaction behavior.
    pub fn has_interaction_behavior(&self) -> bool {
        self.behaviors.iter().any(|b| !b.is_resource)
    }
}

/// A fully analyzed policy ready for the runtime.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompiledPolicy {
    /// Analyzed rules in source order.
    pub rules: Vec<CompiledRule>,
    /// Conflict-detector diagnostics (filled by [`crate::conflict::detect`]).
    pub warnings: Vec<Warning>,
}

/// Analyzes a parsed policy against a schema.
pub fn analyze(policy: &Policy, schema: &ActorSchema) -> Result<CompiledPolicy, SemanticError> {
    let mut rules = Vec::with_capacity(policy.rules.len());
    for (index, rule) in policy.rules.iter().enumerate() {
        rules.push(analyze_rule(index, rule, schema)?);
    }
    Ok(CompiledPolicy {
        rules,
        warnings: Vec::new(),
    })
}

struct RuleCx<'a> {
    index: usize,
    schema: &'a ActorSchema,
    vars: BTreeMap<String, AType>,
    order: Vec<String>,
}

impl RuleCx<'_> {
    fn err(&self, msg: impl Into<String>) -> SemanticError {
        SemanticError::new(self.index, msg)
    }

    fn check_type(&self, t: &AType) -> Result<(), SemanticError> {
        match t {
            AType::Any => Ok(()),
            AType::Named(name) => {
                if self.schema.has_type(name) {
                    Ok(())
                } else {
                    Err(self.err(format!("unknown actor type `{name}`")))
                }
            }
        }
    }

    fn declare(&mut self, t: &AType, var: &str) -> Result<(), SemanticError> {
        self.check_type(t)?;
        match self.vars.get(var) {
            Some(existing) if existing != t => Err(self.err(format!(
                "variable `{var}` redeclared as `{t}` (was `{existing}`)"
            ))),
            Some(_) => Ok(()),
            None => {
                self.vars.insert(var.to_string(), t.clone());
                self.order.push(var.to_string());
                Ok(())
            }
        }
    }

    /// First pass: collect declarations from an actor reference.
    fn collect(&mut self, aref: &ActorRef) -> Result<(), SemanticError> {
        if let ActorRef::Decl(t, v) = aref {
            self.declare(t, v)?;
        }
        Ok(())
    }

    /// Second pass: rewrite bare identifiers to `Var` or `Type`.
    fn resolve(&self, aref: &ActorRef) -> Result<ActorRef, SemanticError> {
        match aref {
            ActorRef::Decl(..) | ActorRef::Type(..) => Ok(aref.clone()),
            ActorRef::Var(name) => {
                if self.vars.contains_key(name) {
                    Ok(ActorRef::Var(name.clone()))
                } else if self.schema.has_type(name) {
                    Ok(ActorRef::Type(AType::Named(name.clone())))
                } else {
                    Err(self.err(format!(
                        "`{name}` is neither a declared variable nor an actor type"
                    )))
                }
            }
        }
    }

    /// Returns the type an actor reference denotes (for signature checks).
    fn type_of(&self, aref: &ActorRef) -> AType {
        match aref {
            ActorRef::Decl(t, _) | ActorRef::Type(t) => t.clone(),
            ActorRef::Var(v) => self.vars.get(v).cloned().unwrap_or(AType::Any),
        }
    }

    fn check_func(&self, callee: &ActorRef, fname: &str) -> Result<(), SemanticError> {
        if let AType::Named(t) = self.type_of(callee) {
            let sig = self
                .schema
                .get(&t)
                .ok_or_else(|| self.err(format!("unknown actor type `{t}`")))?;
            if !sig.has_func(fname) {
                return Err(self.err(format!("type `{t}` has no function `{fname}`")));
            }
        }
        Ok(())
    }

    fn check_prop(&self, owner: &ActorRef, prop: &str) -> Result<(), SemanticError> {
        if let AType::Named(t) = self.type_of(owner) {
            let sig = self
                .schema
                .get(&t)
                .ok_or_else(|| self.err(format!("unknown actor type `{t}`")))?;
            if !sig.has_prop(prop) {
                return Err(self.err(format!("type `{t}` has no property `{prop}`")));
            }
        }
        Ok(())
    }
}

fn collect_cond(cx: &mut RuleCx<'_>, cond: &Cond) -> Result<(), SemanticError> {
    match cond {
        Cond::True => Ok(()),
        Cond::Or(a, b) | Cond::And(a, b) => {
            collect_cond(cx, a)?;
            collect_cond(cx, b)
        }
        Cond::Compare { feat, .. } => match feat {
            Feature::ServerRes(_) => Ok(()),
            Feature::ActorRes(a, _) => cx.collect(a),
            Feature::Call { caller, callee, .. } => {
                if let Caller::Actor(a) = caller {
                    cx.collect(a)?;
                }
                cx.collect(callee)
            }
        },
        Cond::InRef { member, owner, .. } => {
            cx.collect(member)?;
            cx.collect(owner)
        }
    }
}

fn collect_behavior(cx: &mut RuleCx<'_>, beh: &Behavior) -> Result<(), SemanticError> {
    match beh {
        Behavior::Balance { types, .. } => {
            for t in types {
                cx.check_type(t)?;
            }
            Ok(())
        }
        Behavior::Reserve { actor, .. } | Behavior::Pin(actor) => cx.collect(actor),
        Behavior::Colocate(a, b) | Behavior::Separate(a, b) => {
            cx.collect(a)?;
            cx.collect(b)
        }
    }
}

fn check_stat(cx: &RuleCx<'_>, feat: &Feature, stat: Stat, val: f64) -> Result<(), SemanticError> {
    match feat {
        Feature::ServerRes(res) | Feature::ActorRes(_, res) => {
            let ok = matches!((res, stat), (_, Stat::Perc) | (Res::Mem, Stat::Size));
            if !ok {
                return Err(cx.err(format!(
                    "statistic `{}` does not apply to resource `{}`",
                    stat.keyword(),
                    res.keyword()
                )));
            }
            if stat == Stat::Perc && !(0.0..=100.0).contains(&val) {
                return Err(cx.err(format!("percentage bound {val} outside [0, 100]")));
            }
        }
        Feature::Call { .. } => {
            if stat == Stat::Perc && !(0.0..=100.0).contains(&val) {
                return Err(cx.err(format!("percentage bound {val} outside [0, 100]")));
            }
        }
    }
    if val < 0.0 || !val.is_finite() {
        return Err(cx.err(format!("bound {val} must be a non-negative number")));
    }
    Ok(())
}

fn resolve_cond(cx: &RuleCx<'_>, cond: &Cond) -> Result<Cond, SemanticError> {
    Ok(match cond {
        Cond::True => Cond::True,
        Cond::Or(a, b) => Cond::Or(
            Box::new(resolve_cond(cx, a)?),
            Box::new(resolve_cond(cx, b)?),
        ),
        Cond::And(a, b) => Cond::And(
            Box::new(resolve_cond(cx, a)?),
            Box::new(resolve_cond(cx, b)?),
        ),
        Cond::Compare {
            feat,
            stat,
            comp,
            val,
        } => {
            check_stat(cx, feat, *stat, *val)?;
            let feat = match feat {
                Feature::ServerRes(r) => Feature::ServerRes(*r),
                Feature::ActorRes(a, r) => Feature::ActorRes(cx.resolve(a)?, *r),
                Feature::Call {
                    caller,
                    callee,
                    fname,
                } => {
                    let caller = match caller {
                        Caller::Client => Caller::Client,
                        Caller::Actor(a) => Caller::Actor(cx.resolve(a)?),
                    };
                    let callee = cx.resolve(callee)?;
                    cx.check_func(&callee, fname)?;
                    Feature::Call {
                        caller,
                        callee,
                        fname: fname.clone(),
                    }
                }
            };
            Cond::Compare {
                feat,
                stat: *stat,
                comp: *comp,
                val: *val,
            }
        }
        Cond::InRef {
            member,
            owner,
            prop,
        } => {
            let member = cx.resolve(member)?;
            let owner = cx.resolve(owner)?;
            cx.check_prop(&owner, prop)?;
            Cond::InRef {
                member,
                owner,
                prop: prop.clone(),
            }
        }
    })
}

fn resolve_behavior(cx: &RuleCx<'_>, beh: &Behavior) -> Result<Behavior, SemanticError> {
    Ok(match beh {
        Behavior::Balance { types, res } => Behavior::Balance {
            types: types.clone(),
            res: *res,
        },
        Behavior::Reserve { actor, res } => Behavior::Reserve {
            actor: cx.resolve(actor)?,
            res: *res,
        },
        Behavior::Colocate(a, b) => Behavior::Colocate(cx.resolve(a)?, cx.resolve(b)?),
        Behavior::Separate(a, b) => Behavior::Separate(cx.resolve(a)?, cx.resolve(b)?),
        Behavior::Pin(a) => Behavior::Pin(cx.resolve(a)?),
    })
}

fn analyze_rule(
    index: usize,
    rule: &Rule,
    schema: &ActorSchema,
) -> Result<CompiledRule, SemanticError> {
    let mut cx = RuleCx {
        index,
        schema,
        vars: BTreeMap::new(),
        order: Vec::new(),
    };
    // Pass 1: declarations (condition first, then behaviors, matching
    // reading order).
    collect_cond(&mut cx, &rule.cond)?;
    for b in &rule.behaviors {
        collect_behavior(&mut cx, b)?;
    }
    // Pass 2: resolution and checks.
    let cond = resolve_cond(&cx, &rule.cond)?;
    let mut behaviors = Vec::with_capacity(rule.behaviors.len());
    for b in &rule.behaviors {
        let resolved = resolve_behavior(&cx, b)?;
        let priority = rule.priority.unwrap_or_else(|| resolved.default_priority());
        behaviors.push(CompiledBehavior {
            is_resource: resolved.is_resource(),
            behavior: resolved,
            priority,
        });
    }
    let vars: Vec<VarDecl> = cx
        .order
        .iter()
        .map(|name| VarDecl {
            name: name.clone(),
            atype: cx.vars[name].clone(),
        })
        .collect();
    let plan = RulePlan::build(&cond, &vars);
    Ok(CompiledRule {
        index,
        cond,
        behaviors,
        vars,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_policy;

    fn media_schema() -> ActorSchema {
        let mut s = ActorSchema::new();
        s.actor_type("Folder").prop("files").func("open");
        s.actor_type("File").func("read");
        s.actor_type("VideoStream").func("watch");
        s.actor_type("UserInfo").func("track");
        s.actor_type("Partition").prop("children").func("read");
        s
    }

    fn compile_ok(src: &str) -> CompiledPolicy {
        let policy = parse_policy(src).unwrap();
        analyze(&policy, &media_schema()).unwrap()
    }

    fn compile_err(src: &str) -> SemanticError {
        let policy = parse_policy(src).unwrap();
        analyze(&policy, &media_schema()).unwrap_err()
    }

    #[test]
    fn metadata_rule_compiles_with_vars() {
        let p = compile_ok(
            "server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 \
             and File(fi) in ref(fo.files) => reserve(fo, cpu); colocate(fo, fi);",
        );
        let r = &p.rules[0];
        assert_eq!(
            r.vars,
            vec![
                VarDecl {
                    name: "fo".into(),
                    atype: AType::Named("Folder".into())
                },
                VarDecl {
                    name: "fi".into(),
                    atype: AType::Named("File".into())
                },
            ]
        );
        assert_eq!(r.var_slot("fo"), Some(0));
        assert_eq!(r.var_slot("fi"), Some(1));
        assert!(r.has_resource_behavior());
        assert!(r.has_interaction_behavior());
        // reserve has higher default priority than colocate.
        assert!(r.behaviors[0].priority > r.behaviors[1].priority);
    }

    #[test]
    fn behavior_declared_variable_is_visible() {
        // `v` is declared inside the behavior (Media Service rule 2).
        let p = compile_ok("server.cpu.perc > 50 => reserve(VideoStream(v), cpu);");
        assert_eq!(p.rules[0].vars.len(), 1);
        assert_eq!(p.rules[0].vars[0].atype, AType::Named("VideoStream".into()));
    }

    #[test]
    fn bare_type_name_resolves_to_type() {
        let p = compile_ok("true => pin(Folder);");
        assert_eq!(
            p.rules[0].behaviors[0].behavior,
            Behavior::Pin(ActorRef::Type(AType::Named("Folder".into())))
        );
    }

    #[test]
    fn unknown_identifier_rejected() {
        let e = compile_err("true => pin(zorp);");
        assert!(e.message.contains("neither a declared variable"), "{e}");
    }

    #[test]
    fn unknown_type_rejected() {
        let e = compile_err("true => reserve(Ghost(g), cpu);");
        assert!(e.message.contains("unknown actor type `Ghost`"), "{e}");
    }

    #[test]
    fn unknown_function_rejected() {
        let e = compile_err("client.call(Folder(f).destroy).count > 1 => pin(f);");
        assert!(e.message.contains("no function `destroy`"), "{e}");
    }

    #[test]
    fn unknown_property_rejected() {
        let e = compile_err("File(fi) in ref(Folder(fo).subdirs) => colocate(fo, fi);");
        assert!(e.message.contains("no property `subdirs`"), "{e}");
    }

    #[test]
    fn redeclaration_with_different_type_rejected() {
        let e = compile_err(
            "client.call(Folder(x).open).count > 1 and client.call(File(x).read).count > 1 \
             => pin(x);",
        );
        assert!(e.message.contains("redeclared"), "{e}");
    }

    #[test]
    fn redeclaration_with_same_type_ok() {
        compile_ok(
            "client.call(Folder(x).open).count > 1 and client.call(Folder(x).open).size > 1 \
             => pin(x);",
        );
    }

    #[test]
    fn count_stat_invalid_for_cpu() {
        let e = compile_err("server.cpu.count > 5 => balance({Folder}, cpu);");
        assert!(e.message.contains("does not apply"), "{e}");
    }

    #[test]
    fn size_stat_valid_for_mem_only() {
        compile_ok("server.mem.size > 1000000 => balance({Folder}, mem);");
        let e = compile_err("server.net.size > 5 => balance({Folder}, net);");
        assert!(e.message.contains("does not apply"), "{e}");
    }

    #[test]
    fn perc_bounds_checked() {
        let e = compile_err("server.cpu.perc > 150 => balance({Folder}, cpu);");
        assert!(e.message.contains("outside [0, 100]"), "{e}");
    }

    #[test]
    fn balance_type_must_exist() {
        let e = compile_err("true => balance({Ghost}, cpu);");
        assert!(e.message.contains("unknown actor type"), "{e}");
    }

    #[test]
    fn any_type_is_always_valid() {
        let p = compile_ok("true => balance({any}, cpu); pin(any);");
        assert_eq!(p.rules[0].behaviors.len(), 2);
    }

    #[test]
    fn rule_priority_overrides_defaults() {
        let p = compile_ok("@priority(7) true => balance({Folder}, cpu); pin(any);");
        assert_eq!(p.rules[0].behaviors[0].priority, 7);
        assert_eq!(p.rules[0].behaviors[1].priority, 7);
    }

    #[test]
    fn rules_are_independent_scopes() {
        // `p1` means different partitions in the two E-Store rules.
        let p = compile_ok(
            "server.cpu.perc > 80 and client.call(Partition(p1).read).perc > 30 => reserve(p1, cpu);\n\
             Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);",
        );
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].vars.len(), 1);
        assert_eq!(p.rules[1].vars.len(), 2);
    }

    #[test]
    fn ref_type_resolution() {
        let p = compile_ok("Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);");
        let r = &p.rules[0];
        assert_eq!(
            r.ref_type(&ActorRef::Var("p1".into())),
            AType::Named("Partition".into())
        );
        assert_eq!(r.ref_type(&ActorRef::Var("ghost".into())), AType::Any);
    }
}
