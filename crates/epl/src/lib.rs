#![warn(missing_docs)]

//! PLASMA's **elasticity programming language** (EPL).
//!
//! The EPL is the paper's second "level" of programming: a declarative rule
//! language, separate from the application program, that describes elasticity
//! behavior in an *actor-condition-behavior* style (Fig. 3 of the paper):
//!
//! ```text
//! server.cpu.perc > 80 and
//! client.call(Folder(fo).open).perc > 40 and
//! File(fi) in ref(fo.files) =>
//!     reserve(fo, cpu); colocate(fo, fi);
//! ```
//!
//! This crate implements the full pipeline:
//!
//! - [`token`] — lexer with line/column spans and `#`/`//` comments.
//! - [`ast`] — the abstract syntax of Fig. 3.II, plus a pretty-printer that
//!   round-trips through the parser (property-tested).
//! - [`parser`] — recursive-descent parser with precise errors
//!   (`or` binds looser than `and`; parentheses are accepted as an
//!   extension).
//! - [`schema`] — the actor-program signature (types, properties,
//!   functions) the policy is compiled against.
//! - [`analyze`] — name resolution, implicit variable declaration
//!   (`Folder(fo)` declares `fo`), statistic/feature applicability checks,
//!   and lowering to a [`CompiledPolicy`] the runtime evaluates.
//! - [`conflict`] — the static conflict detector the paper's compiler runs
//!   (e.g. `colocate` vs `separate` on the same pair), emitting warnings.
//! - [`verify`] — a behavioral model checker that explores a small abstract
//!   cluster and reports oscillation, migration thrash, same-round action
//!   conflicts, and vacuous rules, with counterexample traces.
//!
//! The one-call entry point is [`compile`].
//!
//! # Examples
//!
//! ```
//! use plasma_epl::{compile, schema::ActorSchema};
//!
//! let mut schema = ActorSchema::new();
//! schema.actor_type("Partition").prop("children").func("read");
//!
//! let policy = compile(
//!     "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Partition}, cpu);",
//!     &schema,
//! )
//! .unwrap();
//! assert_eq!(policy.rules.len(), 1);
//! assert!(policy.warnings.is_empty());
//! ```

pub mod analyze;
pub mod ast;
pub mod conflict;
pub mod error;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod schema_text;
pub mod token;
pub mod verify;

pub use analyze::{CompiledBehavior, CompiledPolicy, CompiledRule};
pub use error::{CompileError, ParseError, SemanticError, Warning};
pub use schema::ActorSchema;

/// Parses, analyzes and conflict-checks a policy against an actor schema.
///
/// Returns the compiled policy (with any conflict warnings attached) or the
/// first error encountered.
pub fn compile(source: &str, schema: &ActorSchema) -> Result<CompiledPolicy, CompileError> {
    let policy = parser::parse_policy(source).map_err(CompileError::Parse)?;
    let mut compiled = analyze::analyze(&policy, schema).map_err(CompileError::Semantic)?;
    compiled.warnings = conflict::detect(&compiled);
    Ok(compiled)
}
