//! Static conflict detection between elasticity rules.
//!
//! Mirrors §4.3: "When compiling elasticity rules, PLASMA's compiler detects
//! conflicting rules for the same actor type, and issues warnings." Runtime
//! priority resolution handles the rest, so some combinations are reported
//! as notes rather than warnings.

use crate::analyze::{CompiledPolicy, CompiledRule};
use crate::ast::{AType, Behavior};
use crate::error::{Severity, Warning};

/// Returns whether two type patterns can denote the same actor type.
fn overlaps(a: &AType, b: &AType) -> bool {
    match (a, b) {
        (AType::Any, _) | (_, AType::Any) => true,
        (AType::Named(x), AType::Named(y)) => x == y,
    }
}

/// Returns whether two unordered type pairs can overlap.
fn pair_overlaps(a: (&AType, &AType), b: (&AType, &AType)) -> bool {
    (overlaps(a.0, b.0) && overlaps(a.1, b.1)) || (overlaps(a.0, b.1) && overlaps(a.1, b.0))
}

/// Detects conflicts across all rules of a compiled policy.
pub fn detect(policy: &CompiledPolicy) -> Vec<Warning> {
    let mut warnings = Vec::new();
    let items: Vec<(usize, &CompiledRule, &Behavior)> = policy
        .rules
        .iter()
        .flat_map(|r| r.behaviors.iter().map(move |b| (r.index, r, &b.behavior)))
        .collect();

    for (i, &(ri, rule_i, bi)) in items.iter().enumerate() {
        for &(rj, rule_j, bj) in items.iter().skip(i + 1) {
            match (bi, bj) {
                // colocate(a, b) vs separate(a, b): directly contradictory.
                (Behavior::Colocate(a1, b1), Behavior::Separate(a2, b2))
                | (Behavior::Separate(a1, b1), Behavior::Colocate(a2, b2)) => {
                    // (a1, b1) belongs to rule_i, (a2, b2) to rule_j in both
                    // arms, because the arm patterns bind positionally.
                    let ta1 = rule_i.ref_type(a1);
                    let tb1 = rule_i.ref_type(b1);
                    let ta2 = rule_j.ref_type(a2);
                    let tb2 = rule_j.ref_type(b2);
                    if pair_overlaps((&ta1, &tb1), (&ta2, &tb2)) {
                        warnings.push(Warning {
                            severity: Severity::Warning,
                            rules: sorted(ri, rj),
                            message: format!(
                                "`{bi}` conflicts with `{bj}`: the same actor pair may be \
                                 both colocated and separated"
                            ),
                        });
                    }
                }
                // pin(t) vs balance({..t..}): balance cannot move pinned actors.
                (Behavior::Pin(a), Behavior::Balance { types, .. })
                | (Behavior::Balance { types, .. }, Behavior::Pin(a)) => {
                    let (pin_rule, _) = if matches!(bi, Behavior::Pin(_)) {
                        (rule_i, rule_j)
                    } else {
                        (rule_j, rule_i)
                    };
                    let t = pin_rule.ref_type(a);
                    if types.iter().any(|bt| overlaps(&t, bt)) {
                        warnings.push(Warning {
                            severity: Severity::Warning,
                            rules: sorted(ri, rj),
                            message: format!(
                                "`{bi}` and `{bj}` target overlapping actor types: \
                                 balance cannot migrate pinned actors"
                            ),
                        });
                    }
                }
                // pin(t) vs reserve(t): legitimate (the Media Service pins
                // VideoStreams *after* reserving them, §3.3); note the
                // ordering dependency rather than warn.
                (Behavior::Pin(a), Behavior::Reserve { actor, .. })
                | (Behavior::Reserve { actor, .. }, Behavior::Pin(a)) => {
                    let (pin_rule, res_rule) = if matches!(bi, Behavior::Pin(_)) {
                        (rule_i, rule_j)
                    } else {
                        (rule_j, rule_i)
                    };
                    if overlaps(&pin_rule.ref_type(a), &res_rule.ref_type(actor)) {
                        warnings.push(Warning {
                            severity: Severity::Note,
                            rules: sorted(ri, rj),
                            message: format!(
                                "`{bi}` and `{bj}` target overlapping actor types: \
                                 a pinned actor cannot be re-reserved until unpinned"
                            ),
                        });
                    }
                }
                // colocate vs balance touching the same types: legal, resolved
                // by priority (the paper's §4.3 example) - emit a note.
                (Behavior::Colocate(a, b), Behavior::Balance { types, .. })
                | (Behavior::Balance { types, .. }, Behavior::Colocate(a, b)) => {
                    let co_rule = if matches!(bi, Behavior::Colocate(..)) {
                        rule_i
                    } else {
                        rule_j
                    };
                    let (ta, tb) = (co_rule.ref_type(a), co_rule.ref_type(b));
                    if types
                        .iter()
                        .any(|bt| overlaps(&ta, bt) || overlaps(&tb, bt))
                    {
                        warnings.push(Warning {
                            severity: Severity::Note,
                            rules: sorted(ri, rj),
                            message: format!(
                                "`{bi}` and `{bj}` may compete for the same actors; \
                                 resolved at runtime by priority (balance wins by default)"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    warnings
}

fn sorted(a: usize, b: usize) -> Vec<usize> {
    let mut v = vec![a, b];
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_policy;
    use crate::schema::ActorSchema;

    fn schema() -> ActorSchema {
        let mut s = ActorSchema::new();
        s.actor_type("Worker").func("run");
        s.actor_type("Table").func("get");
        s.actor_type("Router").func("route");
        s
    }

    fn warnings(src: &str) -> Vec<Warning> {
        let policy = parse_policy(src).unwrap();
        let compiled = crate::analyze::analyze(&policy, &schema()).unwrap();
        detect(&compiled)
    }

    #[test]
    fn colocate_separate_conflict_detected() {
        let w = warnings(
            "true => colocate(Worker(w), Table(t));\n\
             true => separate(Worker(w2), Table(t2));",
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Warning);
        assert_eq!(w[0].rules, vec![0, 1]);
    }

    #[test]
    fn colocate_separate_disjoint_types_ok() {
        let w = warnings(
            "true => colocate(Worker(w), Worker(w2));\n\
             true => separate(Table(t), Table(t2));",
        );
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn pin_balance_conflict_detected() {
        let w = warnings(
            "true => pin(Router(r));\n\
             server.cpu.perc > 80 => balance({Router}, cpu);",
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Warning);
        assert!(w[0].message.contains("pinned"), "{}", w[0].message);
    }

    #[test]
    fn pin_reserve_is_a_note() {
        let w = warnings(
            "true => pin(Worker(x));\n\
             server.cpu.perc > 80 => reserve(Worker(y), cpu);",
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Note);
    }

    #[test]
    fn colocate_balance_is_a_note() {
        let w = warnings(
            "true => colocate(Worker(w), Table(t));\n\
             server.cpu.perc > 80 => balance({Worker}, cpu);",
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Note);
        assert!(w[0].message.contains("priority"), "{}", w[0].message);
    }

    #[test]
    fn any_overlaps_everything() {
        let w = warnings(
            "true => pin(any);\n\
             server.cpu.perc > 80 => balance({Router}, cpu);",
        );
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn conflict_within_one_rule_detected() {
        let w = warnings("true => colocate(Worker(a), Table(b)); separate(a, b);");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rules, vec![0]);
    }

    #[test]
    fn pin_balance_disjoint_types_ok() {
        let w = warnings(
            "true => pin(Router(r));\n\
             server.cpu.perc > 80 => balance({Worker}, cpu);",
        );
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn same_behavior_kinds_never_conflict() {
        // Two balances, two pins, two separates over the same type: none of
        // these pairs is contradictory on its own.
        let w = warnings(
            "server.cpu.perc > 80 => balance({Worker}, cpu);\n\
             server.mem.perc > 80 => balance({Worker}, mem);\n\
             true => pin(Worker(a));\n\
             true => pin(Worker(b));\n\
             true => separate(Table(t), Table(t2));\n\
             true => separate(Table(t3), Table(t4));",
        );
        // The pins do collide with the balances (each of those 2×2 pairs
        // still warns), but no balance/balance, pin/pin, or
        // separate/separate pair does.
        for warning in &w {
            assert_eq!(warning.severity, Severity::Warning);
            assert!(warning.message.contains("pinned"), "{}", warning.message);
        }
        assert_eq!(w.len(), 4, "{w:?}");
    }

    #[test]
    fn one_pin_warns_against_each_overlapping_mover() {
        // A single pinned type crossed with balance and reserve produces one
        // warning per pair, each with its own severity.
        let w = warnings(
            "true => pin(Worker(x));\n\
             server.cpu.perc > 80 => balance({Worker}, cpu);\n\
             server.cpu.perc > 80 => reserve(Worker(y), cpu);",
        );
        assert_eq!(w.len(), 2, "{w:?}");
        assert!(w
            .iter()
            .any(|w| w.severity == Severity::Warning && w.rules == vec![0, 1]));
        assert!(w
            .iter()
            .any(|w| w.severity == Severity::Note && w.rules == vec![0, 2]));
    }

    #[test]
    fn estore_policy_yields_reserve_balance_coexistence() {
        // reserve + balance on the same type is allowed without warning
        // (E-Store, §3.3) - only pin interactions warn.
        let w = warnings(
            "server.cpu.perc > 80 => reserve(Worker(p), cpu);\n\
             server.cpu.perc < 50 => balance({Worker}, cpu);",
        );
        assert!(w.is_empty(), "{w:?}");
    }
}
