//! `eplc` — the standalone PLASMA elasticity-policy compiler.
//!
//! ```text
//! eplc check   <policy.epl> --schema <schema.acts>   # compile + conflicts
//! eplc explain <policy.epl> --schema <schema.acts>   # rules, vars, sides
//! eplc fmt     <policy.epl> --schema <schema.acts>   # canonical formatting
//! ```
//!
//! Exit code 0 on success, 1 on compile errors, 2 on usage/IO errors.

use std::process::ExitCode;

use plasma_epl::schema_text::parse_schema;
use plasma_epl::{compile, ActorSchema};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Compile(msg)) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!();
            eprintln!("usage: eplc <check|explain|fmt> <policy.epl> --schema <schema.acts>");
            ExitCode::from(2)
        }
    }
}

enum CliError {
    Usage(String),
    Compile(String),
}

fn run(args: &[String]) -> Result<(), CliError> {
    let mut command = None;
    let mut policy_path = None;
    let mut schema_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => {
                schema_path = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--schema needs a path".into()))?
                        .clone(),
                );
            }
            "check" | "explain" | "fmt" if command.is_none() => {
                command = Some(arg.clone());
            }
            _ if policy_path.is_none() => policy_path = Some(arg.clone()),
            other => {
                return Err(CliError::Usage(format!("unexpected argument `{other}`")));
            }
        }
    }
    let command = command.ok_or_else(|| CliError::Usage("missing command".into()))?;
    let policy_path = policy_path.ok_or_else(|| CliError::Usage("missing policy file".into()))?;
    let schema_path =
        schema_path.ok_or_else(|| CliError::Usage("missing --schema <file>".into()))?;

    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))
    };
    let schema_src = read(&schema_path)?;
    let policy_src = read(&policy_path)?;

    let schema: ActorSchema =
        parse_schema(&schema_src).map_err(|e| CliError::Compile(format!("{schema_path}: {e}")))?;
    let compiled = compile(&policy_src, &schema)
        .map_err(|e| CliError::Compile(format!("{policy_path}: {e}")))?;

    match command.as_str() {
        "check" => {
            for warning in &compiled.warnings {
                println!("{policy_path}: {warning}");
            }
            println!(
                "{policy_path}: {} rule(s) OK ({} diagnostic(s))",
                compiled.rules.len(),
                compiled.warnings.len()
            );
        }
        "explain" => {
            for rule in &compiled.rules {
                println!("rule {}: {}", rule.index + 1, rule.cond);
                for cb in &rule.behaviors {
                    println!(
                        "    -> {} [{} side, priority {}]",
                        cb.behavior,
                        if cb.is_resource { "GEM" } else { "LEM" },
                        cb.priority
                    );
                }
                for var in &rule.vars {
                    println!("    var {}: {}", var.name, var.atype);
                }
            }
            for warning in &compiled.warnings {
                println!("{warning}");
            }
        }
        "fmt" => {
            // Re-parse for the original AST (the compiled form is resolved).
            let policy = plasma_epl::parser::parse_policy(&policy_src)
                .expect("already compiled successfully");
            for rule in &policy.rules {
                println!("{rule}");
            }
        }
        _ => unreachable!("command validated above"),
    }
    Ok(())
}
