//! The abstract migration model: thrash and same-round action conflicts.
//!
//! Three servers carry discretized load quanta (a server saturates at
//! `quanta` units). One *tracked actor* `a` weighs one quantum and is the
//! subject of every resource behavior (`reserve`, `balance`); a weightless
//! *partner* `b` exists for interaction behaviors (`colocate`, `separate`,
//! `pin`). The pair's types are drawn from the types the policy mentions,
//! and each rule with actor-level predicates gets a boolean *environment
//! guard* — the nondeterministic workload may make it true or false, but it
//! stays fixed along an orbit (thrash must reproduce on *unchanged*
//! abstract load to count).
//!
//! A round mirrors the EMR's planning order:
//!
//! 1. evaluate rule conditions (server thresholds against the model's
//!    utilizations, guards from the environment),
//! 2. collect pins,
//! 3. resource proposals for `a` in rule order — `reserve` targets the
//!    least-loaded admissible server, `balance` moves one quantum from the
//!    most- to the least-loaded server only when the gap is ≥ 2 (the GEM's
//!    half-gap rule, which is what makes rebalancing oscillation-free) —
//!    resolved by priority, ties to the earlier rule,
//! 4. interaction moves — `colocate` anchors on a same-round resource
//!    destination ("files follow the folder"), then on a pinned partner;
//!    `separate` moves the partner to the least-loaded admissible server.
//!
//! Every state in a small seed set is walked deterministically until the
//! orbit revisits a state or the horizon runs out. An actor arriving at a
//! server it departed within `thrash_window` rounds is a
//! [`Property::Thrash`] finding; a pin blocking a resource move, or two
//! resource rules proposing different destinations in one round, is a
//! [`Property::Conflict`] finding.

use crate::analyze::CompiledPolicy;
use crate::ast::{AType, Behavior, Res};
use crate::error::Severity;

use super::meta::{eval_cond, has_guard_predicates, server_band};
use super::scaling::{DEFAULT_LOWER, DEFAULT_UPPER};
use super::{Finding, Property, TraceStep, Verdict, VerifyConfig};

/// Servers in the migration model.
const M: usize = 3;
/// Cap on tracked type pairs (quadratic in mentioned types).
const MAX_PAIRS: usize = 16;
/// Cap on environment guard bits (environments are 2^guards).
const MAX_GUARDS: usize = 6;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct State {
    /// Server hosting the tracked actor `a` (one load quantum).
    pos_a: u8,
    /// Server hosting the weightless partner `b`.
    pos_b: u8,
    /// Background load quanta per server (excludes `a`).
    q: [u8; M],
    /// Server currently dedicated by a `reserve`, if any.
    reserved: Option<u8>,
}

fn overlaps(a: &AType, b: &AType) -> bool {
    match (a, b) {
        (AType::Any, _) | (_, AType::Any) => true,
        (AType::Named(x), AType::Named(y)) => x == y,
    }
}

/// Actor types the policy mentions in behaviors (instance candidates).
fn instance_types(policy: &CompiledPolicy) -> Vec<AType> {
    let mut types: Vec<AType> = Vec::new();
    let mut push = |t: AType| {
        if !types.contains(&t) {
            types.push(t);
        }
    };
    for rule in &policy.rules {
        for cb in &rule.behaviors {
            match &cb.behavior {
                Behavior::Pin(r) | Behavior::Reserve { actor: r, .. } => {
                    push(rule.ref_type(r));
                }
                Behavior::Balance { types: ts, .. } => {
                    for t in ts {
                        push(t.clone());
                    }
                }
                Behavior::Colocate(x, y) | Behavior::Separate(x, y) => {
                    push(rule.ref_type(x));
                    push(rule.ref_type(y));
                }
            }
        }
    }
    if types.is_empty() {
        types.push(AType::Any);
    }
    types
}

/// One resource-move proposal for the tracked actor.
struct Proposal {
    rule: usize,
    priority: u32,
    dst: u8,
    kind: &'static str,
}

/// Per-orbit walk bookkeeping for one actor: where and when it departed.
#[derive(Clone, Copy, Default)]
struct Departures {
    from: [Option<(usize, usize)>; M], // server -> (round, rule)
}

pub(super) fn check(
    policy: &CompiledPolicy,
    config: &VerifyConfig,
    verdict: &mut Verdict,
    fired: &mut [bool],
) {
    if policy.rules.is_empty() {
        return;
    }
    let types = instance_types(policy);
    let mut pairs: Vec<(AType, AType)> = Vec::new();
    for ta in &types {
        for tb in &types {
            pairs.push((ta.clone(), tb.clone()));
        }
    }
    if pairs.len() > MAX_PAIRS {
        verdict.notes.push(format!(
            "migration model: tracking {MAX_PAIRS} of {} type pairs",
            pairs.len()
        ));
        pairs.truncate(MAX_PAIRS);
    }
    let mut guards: Vec<usize> = policy
        .rules
        .iter()
        .filter(|r| has_guard_predicates(&r.cond))
        .map(|r| r.index)
        .collect();
    if guards.len() > MAX_GUARDS {
        verdict.notes.push(format!(
            "migration model: first {MAX_GUARDS} of {} guard predicates vary; \
             the rest are held true",
            guards.len()
        ));
        guards.truncate(MAX_GUARDS);
    }

    let mut walker = Walker {
        policy,
        config,
        guards,
        conflicts_seen: Vec::new(),
        thrash_found: false,
    };
    for (ta, tb) in &pairs {
        for env in 0..(1u32 << walker.guards.len()) {
            for seed in seeds(config.quanta) {
                walker.walk(ta, tb, env, seed, verdict, fired);
            }
        }
    }
}

/// Seed states: a handful of load profiles crossed with all pair positions.
fn seeds(quanta: u32) -> Vec<State> {
    let full = quanta.min(u8::MAX as u32) as u8;
    let profiles: [[u8; M]; 6] = [
        [0, 0, 0],
        [full, 0, 0],
        [full, full.saturating_sub(2), 0],
        [full, full, 0],
        [full.saturating_sub(2); M],
        [full, full.saturating_sub(2), full.saturating_sub(4)],
    ];
    let mut out = Vec::with_capacity(profiles.len() * M * M);
    for q in profiles {
        for pos_a in 0..M as u8 {
            for pos_b in 0..M as u8 {
                out.push(State {
                    pos_a,
                    pos_b,
                    q,
                    reserved: None,
                });
            }
        }
    }
    out
}

struct Walker<'p> {
    policy: &'p CompiledPolicy,
    config: &'p VerifyConfig,
    guards: Vec<usize>,
    /// Dedup key per reported conflict: (class, rules).
    conflicts_seen: Vec<(&'static str, Vec<usize>)>,
    thrash_found: bool,
}

impl Walker<'_> {
    fn guard(&self, rule: usize, env: u32) -> bool {
        match self.guards.iter().position(|&g| g == rule) {
            Some(bit) => env >> bit & 1 == 1,
            None => true,
        }
    }

    fn util(&self, load: u8) -> f64 {
        load as f64 * 100.0 / self.config.quanta as f64
    }

    fn walk(
        &mut self,
        ta: &AType,
        tb: &AType,
        env: u32,
        seed: State,
        verdict: &mut Verdict,
        fired: &mut [bool],
    ) {
        let mut state = seed;
        let mut visited: Vec<State> = Vec::new();
        let mut log: Vec<TraceStep> = Vec::new();
        let mut dep_a = Departures::default();
        let mut dep_b = Departures::default();
        for round in 1..=self.config.horizon {
            if visited.contains(&state) {
                break;
            }
            visited.push(state);
            verdict.states_explored += 1;
            self.step(
                ta, tb, env, round, &mut state, &mut log, &mut dep_a, &mut dep_b, verdict, fired,
            );
        }
    }

    /// One EMR round over the abstract state. Returns nothing; findings are
    /// appended to `verdict` as they are discovered.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        ta: &AType,
        tb: &AType,
        env: u32,
        round: usize,
        state: &mut State,
        log: &mut Vec<TraceStep>,
        dep_a: &mut Departures,
        dep_b: &mut Departures,
        verdict: &mut Verdict,
        fired: &mut [bool],
    ) {
        let load = |state: &State, s: u8| state.q[s as usize] + u8::from(state.pos_a == s);
        let policy = self.policy;
        let rules = &policy.rules;

        // 1. Condition satisfaction. Resource rules look at the whole
        // cluster (any server may trigger them); actor-scoped rules look at
        // the tracked actor's server.
        let sat: Vec<bool> = rules
            .iter()
            .map(|rule| {
                let g = self.guard(rule.index, env);
                let here = self.util(load(state, state.pos_a));
                if rule.has_resource_behavior() {
                    let max = (0..M as u8).map(|s| load(state, s)).max().unwrap();
                    let min = (0..M as u8).map(|s| load(state, s)).min().unwrap();
                    eval_cond(&rule.cond, self.util(max), g)
                        || eval_cond(&rule.cond, self.util(min), g)
                        || eval_cond(&rule.cond, here, g)
                } else {
                    eval_cond(&rule.cond, here, g)
                }
            })
            .collect();
        for rule in rules {
            if sat[rule.index] {
                fired[rule.index] = true;
            }
        }

        // 2. Pins.
        let mut pinned_a: Option<usize> = None;
        let mut pinned_b: Option<usize> = None;
        for rule in rules {
            if !sat[rule.index] {
                continue;
            }
            for cb in &rule.behaviors {
                if let Behavior::Pin(r) = &cb.behavior {
                    let t = rule.ref_type(r);
                    if overlaps(&t, ta) {
                        pinned_a.get_or_insert(rule.index);
                    }
                    if overlaps(&t, tb) {
                        pinned_b.get_or_insert(rule.index);
                    }
                }
            }
        }

        // 3. Resource proposals for `a`, plus background balance moves.
        let mut proposals: Vec<Proposal> = Vec::new();
        for rule in rules {
            if !sat[rule.index] {
                continue;
            }
            for cb in &rule.behaviors {
                match &cb.behavior {
                    Behavior::Reserve { actor, res } => {
                        if !overlaps(&rule.ref_type(actor), ta)
                            || state.reserved == Some(state.pos_a)
                        {
                            continue;
                        }
                        let band = server_band(&rule.cond, *res);
                        let admit = band.lower_or(DEFAULT_LOWER).max(30.0);
                        let dst = (0..M as u8)
                            .filter(|&s| s != state.pos_a)
                            .filter(|&s| self.util(load(state, s) + 1) < admit)
                            .min_by_key(|&s| (load(state, s), s));
                        let Some(dst) = dst else { continue };
                        if let Some(pin) = pinned_a {
                            self.conflict(
                                verdict,
                                "pin-reserve",
                                vec![pin, rule.index],
                                Severity::Note,
                                format!(
                                    "rule {} wants to reserve actor a ({ta}) onto \
                                     server {dst} but rule {} pins it to server {}",
                                    rule.index + 1,
                                    pin + 1,
                                    state.pos_a
                                ),
                                round,
                                log,
                            );
                            continue;
                        }
                        proposals.push(Proposal {
                            rule: rule.index,
                            priority: cb.priority,
                            dst,
                            kind: "reserve",
                        });
                    }
                    Behavior::Balance { types, res } => {
                        let band = server_band(&rule.cond, *res);
                        let upper = band.upper_or(DEFAULT_UPPER);
                        let lower = band.lower_or(DEFAULT_LOWER);
                        let eligible = |s: u8| state.reserved != Some(s);
                        let Some(src) = (0..M as u8)
                            .filter(|&s| eligible(s))
                            .max_by_key(|&s| (load(state, s), std::cmp::Reverse(s)))
                        else {
                            continue;
                        };
                        let Some(dst) = (0..M as u8)
                            .filter(|&s| eligible(s) && s != src)
                            .min_by_key(|&s| (load(state, s), s))
                        else {
                            continue;
                        };
                        let triggered = self.util(load(state, src)) > upper
                            || self.util(load(state, dst)) < lower;
                        // The GEM's half-gap rule: move one quantum only
                        // while the gap is ≥ 2, so the source stays at or
                        // above the destination and rebalancing alone can
                        // never oscillate.
                        if !triggered || load(state, src) - load(state, dst) < 2 {
                            continue;
                        }
                        let a_movable = state.pos_a == src && types.iter().any(|t| overlaps(t, ta));
                        if a_movable {
                            if let Some(pin) = pinned_a {
                                self.conflict(
                                    verdict,
                                    "pin-balance",
                                    vec![pin, rule.index],
                                    Severity::Warning,
                                    format!(
                                        "rule {} needs to migrate actor a ({ta}) off \
                                         overloaded server {src} but rule {} pins it",
                                        rule.index + 1,
                                        pin + 1
                                    ),
                                    round,
                                    log,
                                );
                            } else {
                                proposals.push(Proposal {
                                    rule: rule.index,
                                    priority: cb.priority,
                                    dst,
                                    kind: "balance",
                                });
                                continue;
                            }
                        }
                        // Background quantum rebalances even when `a` is
                        // elsewhere, pinned, or not a movable type.
                        if state.q[src as usize] > 0 {
                            state.q[src as usize] -= 1;
                            state.q[dst as usize] += 1;
                        }
                    }
                    _ => {}
                }
            }
        }

        // Resolve competing proposals: highest priority, ties to the
        // earlier rule (the EMR's resolution order).
        proposals.sort_by_key(|p| (std::cmp::Reverse(p.priority), p.rule));
        let mut a_moved: Option<u8> = None;
        if let Some(winner) = proposals.first() {
            if let Some(loser) = proposals.iter().find(|p| p.dst != winner.dst) {
                self.conflict(
                    verdict,
                    "competing-destinations",
                    vec![winner.rule.min(loser.rule), winner.rule.max(loser.rule)],
                    Severity::Note,
                    format!(
                        "rules {} and {} propose different destinations for actor a \
                         ({ta}) in one round (servers {} vs {}); priority resolves it",
                        winner.rule + 1,
                        loser.rule + 1,
                        winner.dst,
                        loser.dst
                    ),
                    round,
                    log,
                );
            }
            let dst = winner.dst;
            if winner.kind == "reserve" {
                state.reserved = Some(dst);
            }
            self.move_a(
                state,
                dst,
                winner.rule,
                winner.kind,
                ta,
                round,
                log,
                dep_a,
                verdict,
            );
            a_moved = Some(dst);
        }

        // 4. Interaction moves, in rule order.
        for rule in rules {
            if !sat[rule.index] {
                continue;
            }
            for cb in &rule.behaviors {
                match &cb.behavior {
                    Behavior::Colocate(x, y) => {
                        let (tx, ty) = (rule.ref_type(x), rule.ref_type(y));
                        let matches = (overlaps(&tx, ta) && overlaps(&ty, tb))
                            || (overlaps(&tx, tb) && overlaps(&ty, ta));
                        if !matches || state.pos_a == state.pos_b {
                            continue;
                        }
                        let upper = server_band(&rule.cond, Res::Cpu).upper_or(DEFAULT_UPPER);
                        if a_moved.is_some() || pinned_a.is_some() {
                            // `a` anchored (this round's resource move wins,
                            // or a pin holds it): the partner follows.
                            if pinned_b.is_some() && a_moved.is_some() {
                                // Partner pinned, anchor moved away: the
                                // pair cannot re-form this round.
                                continue;
                            }
                            if pinned_b.is_none() {
                                let dst = state.pos_a;
                                self.move_b(state, dst, rule.index, tb, round, log, dep_b, verdict);
                            }
                        } else if pinned_b.is_some() {
                            // Partner is the anchor; `a` (one quantum) joins
                            // it if the server admits the extra load.
                            if self.util(load(state, state.pos_b) + 1) <= upper {
                                let dst = state.pos_b;
                                self.move_a(
                                    state, dst, rule.index, "colocate", ta, round, log, dep_a,
                                    verdict,
                                );
                            }
                        } else {
                            // Neither anchored: the weightless partner has
                            // the smaller state and moves.
                            let dst = state.pos_a;
                            self.move_b(state, dst, rule.index, tb, round, log, dep_b, verdict);
                        }
                    }
                    Behavior::Separate(x, y) => {
                        let (tx, ty) = (rule.ref_type(x), rule.ref_type(y));
                        let matches = (overlaps(&tx, ta) && overlaps(&ty, tb))
                            || (overlaps(&tx, tb) && overlaps(&ty, ta));
                        if !matches || state.pos_a != state.pos_b {
                            continue;
                        }
                        let upper = server_band(&rule.cond, Res::Cpu).upper_or(DEFAULT_UPPER);
                        let here = state.pos_a;
                        let dst = (0..M as u8)
                            .filter(|&s| s != here && state.reserved != Some(s))
                            .filter(|&s| self.util(load(state, s)) < upper)
                            .min_by_key(|&s| (load(state, s), s));
                        let Some(dst) = dst else { continue };
                        if pinned_b.is_none() {
                            self.move_b(state, dst, rule.index, tb, round, log, dep_b, verdict);
                        } else if pinned_a.is_none() {
                            self.move_a(
                                state, dst, rule.index, "separate", ta, round, log, dep_a, verdict,
                            );
                        }
                    }
                    _ => {}
                }
            }
        }

        // Keep the rolling log bounded; traces only ever need the last
        // thrash window plus the closing round.
        let window_start = round.saturating_sub(self.config.thrash_window + 1);
        log.retain(|s| s.round > window_start);
    }

    #[allow(clippy::too_many_arguments)]
    fn move_a(
        &mut self,
        state: &mut State,
        dst: u8,
        rule: usize,
        kind: &str,
        ta: &AType,
        round: usize,
        log: &mut Vec<TraceStep>,
        dep: &mut Departures,
        verdict: &mut Verdict,
    ) {
        let from = state.pos_a;
        if from == dst {
            return;
        }
        state.pos_a = dst;
        self.record_move("a", ta, from, dst, rule, kind, round, log, dep, verdict);
    }

    #[allow(clippy::too_many_arguments)]
    fn move_b(
        &mut self,
        state: &mut State,
        dst: u8,
        rule: usize,
        tb: &AType,
        round: usize,
        log: &mut Vec<TraceStep>,
        dep: &mut Departures,
        verdict: &mut Verdict,
    ) {
        let from = state.pos_b;
        if from == dst {
            return;
        }
        state.pos_b = dst;
        self.record_move(
            "b",
            tb,
            from,
            dst,
            rule,
            "colocate/separate",
            round,
            log,
            dep,
            verdict,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn record_move(
        &mut self,
        who: &str,
        t: &AType,
        from: u8,
        dst: u8,
        rule: usize,
        kind: &str,
        round: usize,
        log: &mut Vec<TraceStep>,
        dep: &mut Departures,
        verdict: &mut Verdict,
    ) {
        log.push(TraceStep {
            round,
            event: "RuleFired".to_string(),
            detail: format!("rule {}: {kind} moves actor {who} ({t})", rule + 1),
        });
        log.push(TraceStep {
            round,
            event: "MigrationStart".to_string(),
            detail: format!("actor {who} ({t}): server {from} → server {dst}"),
        });
        let returned = dep.from[dst as usize];
        dep.from[from as usize] = Some((round, rule));
        if self.thrash_found {
            return;
        }
        if let Some((left_round, left_rule)) = returned {
            if round - left_round <= self.config.thrash_window {
                self.thrash_found = true;
                let mut rules = vec![left_rule, rule];
                rules.sort_unstable();
                rules.dedup();
                let mut trace: Vec<TraceStep> = log
                    .iter()
                    .filter(|s| s.round >= left_round)
                    .cloned()
                    .collect();
                trace.push(TraceStep {
                    round,
                    event: "MigrationStart".to_string(),
                    detail: format!(
                        "actor {who} is back on server {dst} it left in round \
                         {left_round} — the orbit repeats from here"
                    ),
                });
                verdict.findings.push(Finding {
                    property: Property::Thrash,
                    severity: Severity::Warning,
                    rules,
                    message: format!(
                        "actor {who} ({t}) migrated back to server {dst} {} round(s) \
                         after leaving it (rule {} moved it away, rule {} moved it \
                         back; window {})",
                        round - left_round,
                        left_rule + 1,
                        rule + 1,
                        self.config.thrash_window
                    ),
                    trace,
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn conflict(
        &mut self,
        verdict: &mut Verdict,
        class: &'static str,
        mut rules: Vec<usize>,
        severity: Severity,
        message: String,
        round: usize,
        log: &[TraceStep],
    ) {
        rules.sort_unstable();
        rules.dedup();
        let key = (class, rules.clone());
        if self.conflicts_seen.contains(&key) {
            return;
        }
        self.conflicts_seen.push(key);
        let mut trace: Vec<TraceStep> = log
            .iter()
            .filter(|s| s.round + 2 > round)
            .cloned()
            .collect();
        trace.push(TraceStep {
            round,
            event: "RuleEvaluated".to_string(),
            detail: message.clone(),
        });
        verdict.findings.push(Finding {
            property: Property::Conflict,
            severity,
            rules,
            message,
            trace,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ActorSchema;
    use crate::verify::{verify, VerifyConfig};

    fn schema() -> ActorSchema {
        let mut s = ActorSchema::new();
        s.actor_type("Worker").func("run");
        s.actor_type("Table").func("get");
        s
    }

    fn verdict(src: &str) -> super::super::Verdict {
        let policy = crate::compile(src, &schema()).unwrap();
        verify(&policy, &VerifyConfig::default())
    }

    #[test]
    fn colocate_separate_pair_thrashes() {
        let v = verdict(
            "true => colocate(Worker(w), Table(t));\n\
             true => separate(Worker(w2), Table(t2));",
        );
        let f = v.of(Property::Thrash).next().expect("thrash");
        assert_eq!(f.rules, vec![0, 1]);
        assert!(f.gating());
        assert!(!f.trace.is_empty());
    }

    #[test]
    fn pin_blocks_balance_as_conflict_warning() {
        let v = verdict(
            "true => pin(Worker(w));\n\
             server.cpu.perc > 80 => balance({Worker}, cpu);",
        );
        let f = v.of(Property::Conflict).next().expect("conflict");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.rules, vec![0, 1]);
        assert!(f.gating());
    }

    #[test]
    fn pin_blocks_reserve_as_conflict_note() {
        let v = verdict(
            "true => pin(Worker(w));\n\
             server.cpu.perc > 80 => reserve(Worker(w2), cpu);",
        );
        let f = v.of(Property::Conflict).next().expect("conflict");
        assert_eq!(f.severity, Severity::Note);
        assert!(!f.gating());
    }

    #[test]
    fn pinned_partner_balance_colocate_thrashes() {
        // balance pushes `a` off the hot server, colocate drags it back to
        // its pinned partner: the compiler's colocate-vs-balance note shows
        // up here as a real thrash orbit.
        let v = verdict(
            "true => pin(Table(t));\n\
             true => colocate(Worker(w), Table(t2));\n\
             server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        );
        assert!(
            v.of(Property::Thrash).next().is_some(),
            "expected thrash: {:?}",
            v.findings
        );
    }

    #[test]
    fn reserve_then_colocate_is_stable() {
        // The partner follows the reserved actor (pending-destination
        // anchoring), so reserve + colocate does not ping-pong.
        let v = verdict("server.cpu.perc > 80 => reserve(Worker(w), cpu); colocate(w, Table(t));");
        assert!(v.of(Property::Thrash).next().is_none(), "{:?}", v.findings);
    }

    #[test]
    fn stable_pin_colocate_policy_is_clean() {
        // The halo shape: pin the anchor, colocate partners onto it, and
        // balance a type disjoint from the pinned one.
        let mut s = schema();
        s.actor_type("Router").func("route");
        let policy = crate::compile(
            "true => pin(Table(t)); colocate(Worker(w), t);\n\
             server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Router}, cpu);",
            &s,
        )
        .unwrap();
        let v = verify(&policy, &VerifyConfig::default());
        assert!(!v.gating(), "{:?}", v.findings);
    }

    #[test]
    fn vacuous_rule_reported() {
        let v = verdict("server.cpu.perc > 80 and server.cpu.perc < 60 => balance({Worker}, cpu);");
        let f = v.of(Property::Vacuity).next().expect("vacuous");
        assert_eq!(f.rules, vec![0]);
        assert!(!f.gating());
    }
}
