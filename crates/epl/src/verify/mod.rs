//! Behavioral verification of compiled policies against an abstract cluster.
//!
//! The conflict detector ([`crate::conflict`]) warns about rule *pairs* that
//! look contradictory; this module goes further and model-checks the
//! compiled rule set against two small abstract cluster models, in the
//! spirit of Naskos et al., *Cloud elasticity using probabilistic model
//! checking*:
//!
//! - a **scaling model** — server count `n` between configurable bounds and
//!   a conserved total load `W` (integer percent-of-one-server units),
//!   checked for grow→shrink→grow cycles on unchanged load
//!   ([`Property::Oscillation`]) and for states where grow and shrink rules
//!   fire together ([`Property::Conflict`]);
//! - a **migration model** — three servers with discretized load quanta, a
//!   tracked actor pair, and per-rule environment guards for actor-level
//!   predicates, stepped deterministically through the EMR's round
//!   semantics (pin → resource moves → priority resolution → interaction
//!   moves) and checked for actors returning to a server they left within
//!   `k` rounds ([`Property::Thrash`]) and rules firing conflicting actions
//!   on the same actor in one round ([`Property::Conflict`]).
//!
//! Rules whose condition is never satisfiable anywhere in either model are
//! reported as [`Property::Vacuity`].
//!
//! Findings carry a round-by-round counterexample trace whose event names
//! reuse the trace subsystem's vocabulary (`RuleFired`, `ScaleVote`,
//! `ServerBoot`, `ServerDrain`, `MigrationStart`, …) so a reader of
//! `plasma-trace` output recognizes the shapes.
//!
//! # Examples
//!
//! ```
//! use plasma_epl::{compile, schema::ActorSchema};
//! use plasma_epl::verify::{verify, Property, VerifyConfig};
//!
//! let mut schema = ActorSchema::new();
//! schema.actor_type("Worker").func("run");
//! // A tight band: grow at >70, shrink at <65. After growing from n to
//! // n+1 servers the same load sits under the lower watermark, so the
//! // cluster ping-pongs.
//! let policy = compile(
//!     "server.cpu.perc > 70 or server.cpu.perc < 65 => balance({Worker}, cpu);",
//!     &schema,
//! )
//! .unwrap();
//! let verdict = verify(&policy, &VerifyConfig::default());
//! assert!(verdict
//!     .findings
//!     .iter()
//!     .any(|f| f.property == Property::Oscillation));
//! assert!(verdict.gating());
//! ```

pub mod meta;
mod migration;
mod scaling;

use std::fmt;

use serde::Serialize;

use crate::analyze::CompiledPolicy;
use crate::error::Severity;

/// Bounds of the abstract cluster models.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct VerifyConfig {
    /// Smallest deployment the scaling model considers. The default of 3
    /// encodes a deployment floor: a band like 80/60 is provably
    /// oscillation-free only from 3 servers up (`U·n ≥ L·(n+1)`), and real
    /// deployments of the paper's applications start above one server.
    pub min_servers: usize,
    /// Largest deployment the scaling model considers.
    pub max_servers: usize,
    /// Load quanta per server in the migration model (a server saturates at
    /// `quanta` units; the tracked actor is one unit).
    pub quanta: u32,
    /// A migration back to a server left within this many rounds is thrash.
    pub thrash_window: usize,
    /// Rounds each migration orbit is walked before giving up.
    pub horizon: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            min_servers: 3,
            max_servers: 6,
            quanta: 5,
            thrash_window: 8,
            horizon: 64,
        }
    }
}

/// The temporal property a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Property {
    /// Grow→shrink→grow cycle on unchanged abstract load.
    Oscillation,
    /// An actor migrated back to a server it left within the window.
    Thrash,
    /// Two rules fired conflicting actions on the same scope in one round.
    Conflict,
    /// The rule's condition is unsatisfiable in the abstract model.
    Vacuity,
}

impl Property {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Property::Oscillation => "oscillation",
            Property::Thrash => "thrash",
            Property::Conflict => "conflict",
            Property::Vacuity => "vacuity",
        }
    }
}

/// One round of a counterexample, named in the trace subsystem's vocabulary.
#[derive(Clone, Debug, Serialize)]
pub struct TraceStep {
    /// Abstract round number, starting at 1.
    pub round: usize,
    /// Event name (`RuleFired`, `ScaleVote`, `MigrationStart`, …).
    pub event: String,
    /// Human-readable detail for this step.
    pub detail: String,
}

/// A verifier diagnostic with its counterexample.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Which property the rule set violates.
    pub property: Property,
    /// Warning gates CI; Note is informational (mirrors the conflict
    /// detector's severities).
    pub severity: Severity,
    /// 0-based indices of the rules involved.
    pub rules: Vec<usize>,
    /// Human-readable description.
    pub message: String,
    /// Round-by-round counterexample (empty for vacuity findings).
    pub trace: Vec<TraceStep>,
}

impl Finding {
    /// Whether this finding should fail a CI gate.
    pub fn gating(&self) -> bool {
        match self.property {
            Property::Oscillation | Property::Thrash => true,
            Property::Conflict => self.severity == Severity::Warning,
            Property::Vacuity => false,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        let rules: Vec<String> = self.rules.iter().map(|r| (r + 1).to_string()).collect();
        writeln!(
            f,
            "{}: {tag} (rules {}): {}",
            self.property.name(),
            rules.join(", "),
            self.message
        )?;
        for step in &self.trace {
            writeln!(
                f,
                "  round {:>2}  {:<16} {}",
                step.round, step.event, step.detail
            )?;
        }
        Ok(())
    }
}

/// The verifier's overall answer for one policy.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Verdict {
    /// All findings, gating or not.
    pub findings: Vec<Finding>,
    /// Abstract states visited across both models (for reporting).
    pub states_explored: usize,
    /// Model reductions applied (instance/environment caps), if any.
    pub notes: Vec<String>,
}

impl Verdict {
    /// Whether any finding should fail a CI gate.
    pub fn gating(&self) -> bool {
        self.findings.iter().any(Finding::gating)
    }

    /// Findings for one property, in discovery order.
    pub fn of(&self, property: Property) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.property == property)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "ok: no findings ({} states)", self.states_explored);
        }
        for finding in &self.findings {
            finding.fmt(f)?;
        }
        Ok(())
    }
}

/// Model-checks a compiled policy against the abstract cluster models.
pub fn verify(policy: &CompiledPolicy, config: &VerifyConfig) -> Verdict {
    let mut verdict = Verdict::default();
    // `fired[i]` means rule i's condition held in some reachable abstract
    // state of either model; rules that never fire anywhere are vacuous.
    let mut fired = vec![false; policy.rules.len()];
    scaling::check(policy, config, &mut verdict, &mut fired);
    migration::check(policy, config, &mut verdict, &mut fired);
    for (i, rule) in policy.rules.iter().enumerate() {
        if !fired[i] {
            verdict.findings.push(Finding {
                property: Property::Vacuity,
                severity: Severity::Note,
                rules: vec![rule.index],
                message: "condition is unsatisfiable in the abstract model; \
                          the rule can never fire"
                    .to_string(),
                trace: Vec::new(),
            });
        }
    }
    verdict
}
