//! The abstract scaling model: oscillation and grow/shrink conflicts.
//!
//! State is `(n, W)`: `n` servers between the configured bounds and a
//! conserved total load `W` in integer percent-of-one-server units, spread
//! evenly (the GEM's `balance` drives the cluster toward uniform load, so
//! the steady state every vote is taken in is the uniform one). Scale votes
//! follow the EMR exactly: each `balance` rule whose condition holds votes
//! with its own extracted band — out when `util > upper && util >= lower`,
//! in when `util < lower` (uniform load collapses the any/all quantifiers).
//!
//! Oscillation is then a pure reachability question: some `(n, W)` where a
//! grow vote fires at `n` servers **and** a shrink vote fires at `n + 1`
//! servers under the *same* total load. Since a grow needs `W/n > U` and
//! the subsequent shrink needs `W/(n+1) < L`, a band is oscillation-free at
//! `n` servers iff `U·n ≥ L·(n+1)` — which is why the default
//! `min_servers` is 3: the GEM's default 80/60 band passes at `n ≥ 3` but
//! genuinely ping-pongs one- and two-server clusters (real system
//! included).

use crate::analyze::CompiledPolicy;
use crate::ast::Behavior;
use crate::error::Severity;

use super::meta::{eval_cond, server_band};
use super::{Finding, Property, TraceStep, Verdict, VerifyConfig};

/// Default watermarks, percent; mirrors the GEM's `Bounds::DEFAULT`.
pub(super) const DEFAULT_UPPER: f64 = 80.0;
pub(super) const DEFAULT_LOWER: f64 = 60.0;

/// A balance rule's voting band, in percent.
struct Band {
    rule: usize,
    upper: f64,
    lower: f64,
}

fn voters(policy: &CompiledPolicy) -> Vec<Band> {
    let mut out = Vec::new();
    for rule in &policy.rules {
        for cb in &rule.behaviors {
            if let Behavior::Balance { res, .. } = &cb.behavior {
                let band = server_band(&rule.cond, *res);
                out.push(Band {
                    rule: rule.index,
                    upper: band.upper_or(DEFAULT_UPPER),
                    lower: band.lower_or(DEFAULT_LOWER),
                });
            }
        }
    }
    out
}

fn cond(policy: &CompiledPolicy, rule: usize) -> &crate::ast::Cond {
    &policy.rules[rule].cond
}

/// A grow vote at uniform utilization `u` (percent): the rule's condition
/// matched and `any(cpu > upper) && all(cpu >= lower)` holds.
fn grows(policy: &CompiledPolicy, b: &Band, u: f64) -> bool {
    eval_cond(cond(policy, b.rule), u, true) && u > b.upper && u >= b.lower
}

/// A shrink vote at uniform utilization `u`: condition matched, all under.
fn shrinks(policy: &CompiledPolicy, b: &Band, u: f64) -> bool {
    eval_cond(cond(policy, b.rule), u, true) && u < b.lower
}

pub(super) fn check(
    policy: &CompiledPolicy,
    config: &VerifyConfig,
    verdict: &mut Verdict,
    fired: &mut [bool],
) {
    let bands = voters(policy);
    let max_load = config.max_servers * 100;
    let mut oscillated = false;
    let mut conflicted: Vec<(usize, usize)> = Vec::new();

    for n in config.min_servers..=config.max_servers {
        for w in 0..=max_load {
            verdict.states_explored += 1;
            let u = w as f64 / n as f64;
            // Vacuity coverage: any rule whose condition holds at this
            // uniform utilization is reachable.
            for rule in &policy.rules {
                if !fired[rule.index] && eval_cond(&rule.cond, u, true) {
                    fired[rule.index] = true;
                }
            }
            let grow = bands.iter().find(|b| grows(policy, b, u));
            let shrink_now = bands.iter().find(|b| shrinks(policy, b, u));
            if let (Some(g), Some(s)) = (&grow, &shrink_now) {
                let key = (g.rule.min(s.rule), g.rule.max(s.rule));
                if !conflicted.contains(&key) {
                    conflicted.push(key);
                    verdict.findings.push(conflict_finding(g, s, n, w, u));
                }
            }
            if oscillated || n == config.max_servers {
                continue;
            }
            let u_grown = w as f64 / (n + 1) as f64;
            let shrink_after = bands.iter().find(|b| shrinks(policy, b, u_grown));
            if let (Some(g), Some(s)) = (grow, shrink_after) {
                oscillated = true;
                verdict
                    .findings
                    .push(oscillation_finding(g, s, n, w, u, u_grown));
            }
        }
    }
}

fn conflict_finding(g: &Band, s: &Band, n: usize, w: usize, u: f64) -> Finding {
    Finding {
        property: Property::Conflict,
        severity: Severity::Warning,
        rules: sorted(g.rule, s.rule),
        message: format!(
            "at {n} servers under total load {w}% (util {u:.1}% each), rule {} \
             votes to grow (upper {}%) while rule {} votes to shrink (lower \
             {}%) in the same round",
            g.rule + 1,
            g.upper,
            s.rule + 1,
            s.lower
        ),
        trace: vec![
            TraceStep {
                round: 1,
                event: "RuleFired".to_string(),
                detail: format!("rule {}: util {u:.1}% > {}%", g.rule + 1, g.upper),
            },
            TraceStep {
                round: 1,
                event: "ScaleVote".to_string(),
                detail: format!(
                    "out (rule {}) and in (rule {}, util {u:.1}% < {}%) together",
                    g.rule + 1,
                    s.rule + 1,
                    s.lower
                ),
            },
        ],
    }
}

fn oscillation_finding(g: &Band, s: &Band, n: usize, w: usize, u: f64, u_grown: f64) -> Finding {
    let n1 = n + 1;
    Finding {
        property: Property::Oscillation,
        severity: Severity::Warning,
        rules: sorted(g.rule, s.rule),
        message: format!(
            "grow→shrink→grow cycle at {n} servers under constant total load \
             {w}%: util {u:.1}% > {}% grows to {n1} servers, util {u_grown:.1}% \
             < {}% shrinks back (band must satisfy upper·n ≥ lower·(n+1))",
            g.upper, s.lower
        ),
        trace: vec![
            TraceStep {
                round: 1,
                event: "RuleFired".to_string(),
                detail: format!(
                    "rule {}: util {u:.1}% on each of {n} servers > upper {}%",
                    g.rule + 1,
                    g.upper
                ),
            },
            TraceStep {
                round: 1,
                event: "ScaleVote".to_string(),
                detail: "out (majority) — booting 1 server".to_string(),
            },
            TraceStep {
                round: 1,
                event: "ServerBoot".to_string(),
                detail: format!("{n1} servers; load rebalances to {u_grown:.1}% each"),
            },
            TraceStep {
                round: 2,
                event: "ScaleVote".to_string(),
                detail: format!(
                    "in (rule {}): util {u_grown:.1}% < lower {}%, streak 1/2",
                    s.rule + 1,
                    s.lower
                ),
            },
            TraceStep {
                round: 3,
                event: "ScaleVote".to_string(),
                detail: "in, streak 2/2 — draining 1 server".to_string(),
            },
            TraceStep {
                round: 3,
                event: "ServerDrain".to_string(),
                detail: format!("back to {n} servers; load rebalances to {u:.1}% each"),
            },
            TraceStep {
                round: 4,
                event: "RuleFired".to_string(),
                detail: format!(
                    "rule {}: util {u:.1}% > upper {}% again — cycle closed",
                    g.rule + 1,
                    g.upper
                ),
            },
        ],
    }
}

fn sorted(a: usize, b: usize) -> Vec<usize> {
    let mut v = vec![a, b];
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ActorSchema;

    fn compiled(src: &str) -> CompiledPolicy {
        let mut schema = ActorSchema::new();
        schema.actor_type("Worker").func("run");
        crate::compile(src, &schema).unwrap()
    }

    fn run(src: &str, config: &VerifyConfig) -> Verdict {
        let policy = compiled(src);
        let mut verdict = Verdict::default();
        let mut fired = vec![false; policy.rules.len()];
        check(&policy, config, &mut verdict, &mut fired);
        verdict
    }

    #[test]
    fn default_band_safe_from_three_servers() {
        let v = run(
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
            &VerifyConfig::default(),
        );
        assert!(v.findings.is_empty(), "{:?}", v.findings);
    }

    #[test]
    fn default_band_oscillates_below_three_servers() {
        // 80·2 < 60·3: a two-server cluster ping-pongs under W in (160, 180).
        let config = VerifyConfig {
            min_servers: 1,
            ..VerifyConfig::default()
        };
        let v = run(
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
            &config,
        );
        let f = v.of(Property::Oscillation).next().expect("oscillates");
        assert_eq!(f.rules, vec![0]);
        assert!(f.gating());
        assert_eq!(f.trace.len(), 7, "{f}");
    }

    #[test]
    fn tight_band_oscillates_at_default_floor() {
        // 70·n < 65·(n+1) for every n ≤ 12.
        let v = run(
            "server.cpu.perc > 70 or server.cpu.perc < 65 => balance({Worker}, cpu);",
            &VerifyConfig::default(),
        );
        assert!(v.of(Property::Oscillation).next().is_some());
    }

    #[test]
    fn cross_rule_grow_shrink_conflict() {
        // Rule 1 grows above 70, rule 2 shrinks below 80: at util in
        // (70, 80) both vote in the same round.
        let v = run(
            "server.cpu.perc > 70 => balance({Worker}, cpu);\n\
             server.cpu.perc < 80 => balance({Worker}, cpu);",
            &VerifyConfig::default(),
        );
        let f = v.of(Property::Conflict).next().expect("conflicts");
        assert_eq!(f.rules, vec![0, 1]);
        assert_eq!(f.severity, Severity::Warning);
    }
}
