//! Threshold and predicate metadata extracted from rule conditions.
//!
//! The abstract cluster model (and the EMR's GEM planner, which delegates
//! here) needs to know, per rule, which `server.<res>.perc` watermarks the
//! condition states and whether the condition also involves actor-level
//! predicates the model cannot evaluate numerically. Watermarks follow the
//! same last-mention-wins convention the GEM has always used: in
//! `server.cpu.perc > 80 or server.cpu.perc > 90` the `90` wins.

use serde::Serialize;

use crate::ast::{Comp, Cond, Feature, Res, Stat};

/// The `server.<res>.perc` watermarks a condition states, in percent.
///
/// `server.cpu.perc > 80 or server.cpu.perc < 60` yields
/// `upper = Some(80.0), lower = Some(60.0)`. Sides the condition does not
/// mention stay `None`; callers substitute their own defaults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Band {
    /// Upper watermark (`>` / `>=` comparisons), percent.
    pub upper: Option<f64>,
    /// Lower watermark (`<` / `<=` comparisons), percent.
    pub lower: Option<f64>,
}

impl Band {
    /// Upper watermark with a fallback, percent.
    pub fn upper_or(&self, default: f64) -> f64 {
        self.upper.unwrap_or(default)
    }

    /// Lower watermark with a fallback, percent.
    pub fn lower_or(&self, default: f64) -> f64 {
        self.lower.unwrap_or(default)
    }
}

/// Extracts the `server.<res>.perc` watermarks mentioned in a condition.
pub fn server_band(cond: &Cond, res: Res) -> Band {
    let mut band = Band::default();
    collect(cond, res, &mut band);
    band
}

fn collect(cond: &Cond, res: Res, band: &mut Band) {
    match cond {
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect(a, res, band);
            collect(b, res, band);
        }
        Cond::Compare {
            feat: Feature::ServerRes(r),
            stat: Stat::Perc,
            comp,
            val,
        } if *r == res => match comp {
            Comp::Gt | Comp::Ge => band.upper = Some(*val),
            Comp::Lt | Comp::Le => band.lower = Some(*val),
        },
        _ => {}
    }
}

/// Returns whether a condition involves any predicate *other* than a
/// `server.<res>.perc` comparison: actor resource usage, call statistics,
/// or reference membership. The abstract model treats these as one opaque
/// environment guard per rule (the nondeterministic workload can make them
/// true or false, but holds them fixed along an orbit).
pub fn has_guard_predicates(cond: &Cond) -> bool {
    match cond {
        Cond::True => false,
        Cond::And(a, b) | Cond::Or(a, b) => has_guard_predicates(a) || has_guard_predicates(b),
        Cond::Compare {
            feat: Feature::ServerRes(_),
            stat: Stat::Perc,
            ..
        } => false,
        Cond::Compare { .. } | Cond::InRef { .. } => true,
    }
}

/// Evaluates a condition against the abstract state: `util_pct` stands in
/// for every `server.<res>.perc` reading and `guard` for every actor-level
/// predicate (see [`has_guard_predicates`]).
pub fn eval_cond(cond: &Cond, util_pct: f64, guard: bool) -> bool {
    match cond {
        Cond::True => true,
        Cond::And(a, b) => eval_cond(a, util_pct, guard) && eval_cond(b, util_pct, guard),
        Cond::Or(a, b) => eval_cond(a, util_pct, guard) || eval_cond(b, util_pct, guard),
        Cond::Compare {
            feat: Feature::ServerRes(_),
            stat: Stat::Perc,
            comp,
            val,
        } => comp.eval(util_pct, *val),
        Cond::Compare { .. } | Cond::InRef { .. } => guard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_policy;

    fn cond(src: &str) -> Cond {
        let policy = parse_policy(&format!("{src} => pin(any);")).unwrap();
        policy.rules[0].cond.clone()
    }

    #[test]
    fn band_extraction_matches_gem_convention() {
        let c = cond("server.cpu.perc > 80 or server.cpu.perc < 60");
        assert_eq!(
            server_band(&c, Res::Cpu),
            Band {
                upper: Some(80.0),
                lower: Some(60.0),
            }
        );
        assert_eq!(server_band(&c, Res::Mem), Band::default());
    }

    #[test]
    fn last_mention_wins() {
        let c = cond("server.cpu.perc > 80 and server.cpu.perc >= 90");
        assert_eq!(server_band(&c, Res::Cpu).upper, Some(90.0));
    }

    #[test]
    fn guard_predicates_detected() {
        assert!(!has_guard_predicates(&cond("server.cpu.perc > 80")));
        assert!(!has_guard_predicates(&Cond::True));
        let c = cond("server.cpu.perc > 80 and client.call(Worker(w).run).perc > 40");
        assert!(has_guard_predicates(&c));
    }

    #[test]
    fn eval_uses_util_and_guard() {
        let c = cond("server.cpu.perc > 80 and client.call(Worker(w).run).perc > 40");
        assert!(eval_cond(&c, 85.0, true));
        assert!(!eval_cond(&c, 85.0, false));
        assert!(!eval_cond(&c, 50.0, true));
        let contradiction = cond("server.cpu.perc > 80 and server.cpu.perc < 60");
        for u in 0..=150 {
            assert!(!eval_cond(&contradiction, u as f64, true));
        }
    }
}
