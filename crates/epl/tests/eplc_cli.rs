//! Integration tests of the `eplc` command-line compiler.

use std::process::Command;

fn eplc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eplc"))
}

fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("plasma-eplc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const SCHEMA: &str = "actor Worker { func run; }\nactor Table { prop rows; func get; }";

#[test]
fn check_accepts_valid_policy() {
    let schema = write_tmp("ok.acts", SCHEMA);
    let policy = write_tmp(
        "ok.epl",
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
    );
    let out = eplc()
        .args([
            "check",
            policy.to_str().unwrap(),
            "--schema",
            schema.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 rule(s) OK"), "{stdout}");
}

#[test]
fn check_reports_conflicts_but_succeeds() {
    let schema = write_tmp("warn.acts", SCHEMA);
    let policy = write_tmp(
        "warn.epl",
        "true => pin(Worker);\nserver.cpu.perc > 80 => balance({Worker}, cpu);",
    );
    let out = eplc()
        .args([
            "check",
            policy.to_str().unwrap(),
            "--schema",
            schema.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning"), "{stdout}");
    assert!(stdout.contains("1 diagnostic(s)"), "{stdout}");
}

#[test]
fn check_fails_on_semantic_error() {
    let schema = write_tmp("bad.acts", SCHEMA);
    let policy = write_tmp("bad.epl", "true => balance({Ghost}, cpu);");
    let out = eplc()
        .args([
            "check",
            policy.to_str().unwrap(),
            "--schema",
            schema.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown actor type"), "{stderr}");
}

#[test]
fn explain_classifies_behaviors() {
    let schema = write_tmp("exp.acts", SCHEMA);
    let policy = write_tmp(
        "exp.epl",
        "Worker(w).call(Table(t).get).count > 0 => colocate(t, w);\n\
         server.cpu.perc > 80 => balance({Worker}, cpu);",
    );
    let out = eplc()
        .args([
            "explain",
            policy.to_str().unwrap(),
            "--schema",
            schema.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LEM side"), "{stdout}");
    assert!(stdout.contains("GEM side"), "{stdout}");
    assert!(stdout.contains("var w: Worker"), "{stdout}");
}

#[test]
fn fmt_emits_reparsable_canonical_form() {
    let schema = write_tmp("fmt.acts", SCHEMA);
    let policy = write_tmp(
        "fmt.epl",
        "server.cpu.perc>80    or server.cpu.perc<60=>balance({Worker},cpu);",
    );
    let out = eplc()
        .args([
            "fmt",
            policy.to_str().unwrap(),
            "--schema",
            schema.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.trim(),
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);"
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = eplc().args(["check"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = eplc()
        .args(["frobnicate", "x", "--schema", "y"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
