//! The model checker subsumes the static conflict detector: every class of
//! compiler warning reappears as a behavioral verifier finding, usually a
//! stronger one (the colocate/separate warning, for example, shows up as a
//! concrete thrash orbit rather than a syntactic overlap).

use plasma_epl::error::Severity;
use plasma_epl::schema::ActorSchema;
use plasma_epl::verify::{verify, Property, VerifyConfig};
use plasma_epl::{compile, CompiledPolicy};

fn schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    s.actor_type("Worker").func("run");
    s.actor_type("Table").func("get");
    s.actor_type("Router").func("route");
    s.actor_type("Session").prop("players").func("join");
    s.actor_type("Player").func("ping");
    s
}

fn compiled(src: &str) -> CompiledPolicy {
    compile(src, &schema()).unwrap()
}

/// Asserts every compiler warning's rule set is covered by some verifier
/// finding (the finding's rules contain the warning's rules).
fn assert_findings_cover_warnings(policy: &CompiledPolicy) {
    let verdict = verify(policy, &VerifyConfig::default());
    for warning in &policy.warnings {
        let covered = verdict
            .findings
            .iter()
            .any(|f| warning.rules.iter().all(|r| f.rules.contains(r)));
        assert!(
            covered,
            "compiler warning {warning} has no verifier finding covering \
             rules {:?}; findings: {:#?}",
            warning.rules, verdict.findings
        );
    }
}

#[test]
fn colocate_separate_warning_becomes_thrash() {
    let policy = compiled(
        "true => colocate(Worker(w), Table(t));\n\
         true => separate(Worker(w2), Table(t2));",
    );
    assert_eq!(policy.warnings.len(), 1);
    assert_eq!(policy.warnings[0].severity, Severity::Warning);
    let verdict = verify(&policy, &VerifyConfig::default());
    let f = verdict.of(Property::Thrash).next().expect("thrash orbit");
    assert_eq!(f.rules, policy.warnings[0].rules);
    assert!(f.gating(), "colocate/separate must gate");
    assert_findings_cover_warnings(&policy);
}

#[test]
fn pin_balance_warning_becomes_conflict_warning() {
    let policy = compiled(
        "true => pin(Router(r));\n\
         server.cpu.perc > 80 => balance({Router}, cpu);",
    );
    assert_eq!(policy.warnings.len(), 1);
    let verdict = verify(&policy, &VerifyConfig::default());
    let f = verdict
        .of(Property::Conflict)
        .find(|f| f.severity == Severity::Warning)
        .expect("pin blocks balance");
    assert_eq!(f.rules, policy.warnings[0].rules);
    assert!(f.gating());
    assert_findings_cover_warnings(&policy);
}

#[test]
fn pin_reserve_note_becomes_conflict_note() {
    let policy = compiled(
        "true => pin(Worker(x));\n\
         server.cpu.perc > 80 => reserve(Worker(y), cpu);",
    );
    assert_eq!(policy.warnings.len(), 1);
    assert_eq!(policy.warnings[0].severity, Severity::Note);
    let verdict = verify(&policy, &VerifyConfig::default());
    let f = verdict
        .of(Property::Conflict)
        .find(|f| f.severity == Severity::Note)
        .expect("pin blocks reserve");
    assert_eq!(f.rules, policy.warnings[0].rules);
    assert!(!f.gating(), "ordering dependency must not gate");
    assert_findings_cover_warnings(&policy);
}

#[test]
fn colocate_balance_note_becomes_thrash_with_pinned_partner() {
    // The compiler's colocate-vs-balance note is resolved by priority at
    // runtime *unless* the colocate partner is pinned: then balance pushes
    // the actor off the hot server and colocate drags it straight back.
    let policy = compiled(
        "true => pin(Table(t));\n\
         true => colocate(Worker(w), Table(t2));\n\
         server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
    );
    assert!(
        policy
            .warnings
            .iter()
            .any(|w| w.severity == Severity::Note && w.rules == vec![1, 2]),
        "{:?}",
        policy.warnings
    );
    let verdict = verify(&policy, &VerifyConfig::default());
    let f = verdict.of(Property::Thrash).next().expect("thrash orbit");
    assert!(f.rules.contains(&1) || f.rules.contains(&2), "{f}");
    assert!(f.gating());
}

#[test]
fn vacuous_rule_is_reported_beyond_any_warning() {
    // The conflict detector has nothing to say here, but the verifier
    // knows the condition can never hold.
    let policy =
        compiled("server.cpu.perc > 80 and server.cpu.perc < 60 => balance({Worker}, cpu);");
    assert!(policy.warnings.is_empty());
    let verdict = verify(&policy, &VerifyConfig::default());
    let f = verdict.of(Property::Vacuity).next().expect("vacuous rule");
    assert_eq!(f.rules, vec![0]);
    assert!(!verdict.gating(), "vacuity reports but does not gate");
}

#[test]
fn oscillating_band_is_found_without_any_warning() {
    // Another behavioral bug invisible to the pairwise detector.
    let policy =
        compiled("server.cpu.perc > 70 or server.cpu.perc < 65 => balance({Worker}, cpu);");
    assert!(policy.warnings.is_empty());
    let verdict = verify(&policy, &VerifyConfig::default());
    let f = verdict
        .of(Property::Oscillation)
        .next()
        .expect("oscillates");
    assert!(f.gating());
    assert!(
        f.trace.iter().any(|s| s.event == "ServerBoot")
            && f.trace.iter().any(|s| s.event == "ServerDrain"),
        "trace must show the boot/drain cycle: {f}"
    );
}

#[test]
fn halo_policy_is_clean() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../halo.epl"))
        .expect("halo.epl at repo root");
    let policy = compiled(&src);
    assert!(policy.warnings.is_empty(), "{:?}", policy.warnings);
    let verdict = verify(&policy, &VerifyConfig::default());
    assert!(!verdict.gating(), "{:#?}", verdict.findings);
}

#[test]
fn estore_reserve_balance_coexistence_stays_clean() {
    // The E-Store shape the conflict detector deliberately allows must not
    // gain a gating finding from the model checker either.
    let policy = compiled(
        "server.cpu.perc > 80 => reserve(Worker(p), cpu);\n\
         server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
    );
    assert!(policy.warnings.is_empty());
    let verdict = verify(&policy, &VerifyConfig::default());
    assert!(!verdict.gating(), "{:#?}", verdict.findings);
}
