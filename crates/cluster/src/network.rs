//! Latency/bandwidth model for message delivery and state transfer.
//!
//! Two delivery classes matter to the paper's results:
//!
//! - **local** — sender and receiver are actors on the same server; delivery
//!   is a queue hop with sub-millisecond latency.
//! - **remote** — a network round between servers: a base one-way latency
//!   plus a serialization term proportional to message size over the
//!   sender's NIC bandwidth.
//!
//! The gap between the two is exactly what `colocate` rules exploit
//! (Figs. 5, 11), so the model keeps it explicit and configurable.

use serde::{Deserialize, Serialize};

use plasma_sim::SimDuration;

/// Parameters of the cluster interconnect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Delivery latency between actors on the same server.
    pub local_latency: SimDuration,
    /// Base one-way latency between different servers.
    pub remote_latency: SimDuration,
    /// One-way latency for control-plane (LEM/GEM) messages.
    pub control_latency: SimDuration,
    /// Latency from external clients to the cluster edge.
    pub client_latency: SimDuration,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Calibrated to intra-AZ AWS: ~60us kernel/queue hop locally,
        // ~500us between instances, ~5ms from external clients.
        NetworkModel {
            local_latency: SimDuration::from_micros(60),
            remote_latency: SimDuration::from_micros(500),
            control_latency: SimDuration::from_micros(500),
            client_latency: SimDuration::from_millis(5),
        }
    }
}

impl NetworkModel {
    /// Returns the delivery delay for an application message.
    ///
    /// `sender_bps` is the sending server's NIC bandwidth; it only matters
    /// for the remote path.
    pub fn delivery_delay(&self, same_server: bool, bytes: u64, sender_bps: f64) -> SimDuration {
        if same_server {
            self.local_latency
        } else {
            self.remote_latency + Self::wire_time(bytes, sender_bps)
        }
    }

    /// Returns the delay for a bulk transfer (e.g., actor state migration).
    pub fn transfer_delay(&self, bytes: u64, bps: f64) -> SimDuration {
        self.remote_latency + Self::wire_time(bytes, bps)
    }

    /// Returns the one-way delay for a client request entering the cluster.
    pub fn client_delay(&self, bytes: u64, bps: f64) -> SimDuration {
        self.client_latency + Self::wire_time(bytes, bps)
    }

    /// Returns the serialization time of `bytes` at `bps`.
    fn wire_time(bytes: u64, bps: f64) -> SimDuration {
        if bps <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_beats_remote() {
        let net = NetworkModel::default();
        let local = net.delivery_delay(true, 1024, 1e9);
        let remote = net.delivery_delay(false, 1024, 1e9);
        assert!(local < remote);
    }

    #[test]
    fn local_ignores_size() {
        let net = NetworkModel::default();
        assert_eq!(
            net.delivery_delay(true, 1, 1e9),
            net.delivery_delay(true, 1 << 30, 1e9)
        );
    }

    #[test]
    fn remote_grows_with_size_and_shrinks_with_bandwidth() {
        let net = NetworkModel::default();
        let small = net.delivery_delay(false, 1_000, 1e9);
        let big = net.delivery_delay(false, 1_000_000, 1e9);
        assert!(big > small);
        let fast = net.delivery_delay(false, 1_000_000, 10e9);
        assert!(fast < big);
    }

    #[test]
    fn transfer_delay_of_one_megabyte() {
        let net = NetworkModel::default();
        // 1 MB over 1 Gbps = 8ms wire time + 0.5ms latency.
        let d = net.transfer_delay(1_000_000, 1e9);
        assert_eq!(d, SimDuration::from_micros(8_500));
    }

    #[test]
    fn zero_bandwidth_means_latency_only() {
        let net = NetworkModel::default();
        assert_eq!(net.transfer_delay(1_000_000, 0.0), net.remote_latency);
    }
}
