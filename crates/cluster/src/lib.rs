#![warn(missing_docs)]

//! Simulated cloud cluster substrate for PLASMA.
//!
//! The paper evaluates PLASMA on AWS EC2. This crate stands in for the cloud:
//! it models [`InstanceType`]s with calibrated vCPU counts, clock speeds,
//! memory and NIC bandwidth ([`instance`]), [`Server`]s with utilization
//! meters ([`server`]), a latency/bandwidth [`NetworkModel`] ([`network`]),
//! and a [`Cluster`] registry with provisioning/decommissioning mechanics and
//! cost accounting ([`topology`]).
//!
//! The substitution is documented in `DESIGN.md`: the paper's experiments
//! measure *relative* behavior (who wins, crossover points), which a
//! deterministic model of CPU service time, network latency/bandwidth, and
//! instance boot delay preserves without cloud noise.

pub mod instance;
pub mod netfault;
pub mod network;
pub mod resources;
pub mod server;
pub mod topology;

pub use instance::InstanceType;
pub use netfault::{LinkDegradation, NetFaults};
pub use network::NetworkModel;
pub use resources::{ResourceKind, ResourceUsage};
pub use server::{Server, ServerId, ServerState};
pub use topology::{Cluster, LifecycleEvent};
