//! Resource kinds and per-kind usage vectors shared across the workspace.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// The three resource dimensions the EPL exposes (`cpu`, `mem`, `net`).
///
/// Matches the `res` production of the paper's Fig. 3 grammar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Processor time.
    Cpu,
    /// Resident memory.
    Mem,
    /// Network bandwidth.
    Net,
}

impl ResourceKind {
    /// All resource kinds, in a fixed order usable for indexing.
    pub const ALL: [ResourceKind; 3] = [ResourceKind::Cpu, ResourceKind::Mem, ResourceKind::Net];

    /// Returns the dense index of this kind (0, 1 or 2).
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Mem => 1,
            ResourceKind::Net => 2,
        }
    }

    /// Returns the EPL keyword for this kind.
    pub const fn keyword(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Mem => "mem",
            ResourceKind::Net => "net",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A per-resource usage vector, typically holding fractions in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use plasma_cluster::{ResourceKind, ResourceUsage};
///
/// let mut u = ResourceUsage::ZERO;
/// u[ResourceKind::Cpu] = 0.85;
/// assert!(u[ResourceKind::Cpu] > 0.8);
/// assert_eq!(u[ResourceKind::Net], 0.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ResourceUsage([f64; 3]);

impl ResourceUsage {
    /// The all-zero usage vector.
    pub const ZERO: ResourceUsage = ResourceUsage([0.0; 3]);

    /// Builds a usage vector from explicit components.
    pub const fn new(cpu: f64, mem: f64, net: f64) -> Self {
        ResourceUsage([cpu, mem, net])
    }

    /// Returns the CPU component.
    pub fn cpu(&self) -> f64 {
        self.0[0]
    }

    /// Returns the memory component.
    pub fn mem(&self) -> f64 {
        self.0[1]
    }

    /// Returns the network component.
    pub fn net(&self) -> f64 {
        self.0[2]
    }

    /// Component-wise addition.
    pub fn add(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage([
            self.0[0] + other.0[0],
            self.0[1] + other.0[1],
            self.0[2] + other.0[2],
        ])
    }

    /// Returns the largest component.
    pub fn max_component(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

impl Index<ResourceKind> for ResourceUsage {
    type Output = f64;
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceUsage {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.0[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_index() {
        for kind in ResourceKind::ALL {
            assert_eq!(ResourceKind::ALL[kind.index()], kind);
        }
    }

    #[test]
    fn keywords_match_epl() {
        assert_eq!(ResourceKind::Cpu.to_string(), "cpu");
        assert_eq!(ResourceKind::Mem.to_string(), "mem");
        assert_eq!(ResourceKind::Net.to_string(), "net");
    }

    #[test]
    fn usage_indexing_and_ops() {
        let a = ResourceUsage::new(0.5, 0.25, 0.75);
        assert_eq!(a[ResourceKind::Cpu], 0.5);
        assert_eq!(a.mem(), 0.25);
        let b = a.add(&ResourceUsage::new(0.1, 0.0, 0.0));
        assert!((b.cpu() - 0.6).abs() < 1e-12);
        assert_eq!(a.max_component(), 0.75);
    }
}
