//! Network fault state: partitions between server groups and link
//! degradation (added latency, bandwidth loss, probabilistic drop).
//!
//! The [`Cluster`](crate::Cluster) owns one [`NetFaults`] instance; the actor
//! runtime consults it on every cross-server delivery and migration
//! transfer. With no faults active ([`NetFaults::is_clear`]) every query
//! returns the identity answer (`severed == false`, zero extra latency,
//! bandwidth factor 1.0, zero drop probability), so the fault-free hot path
//! takes the same decisions — and the same RNG draws — as before this module
//! existed.

use std::collections::BTreeSet;

use plasma_sim::SimDuration;

use crate::server::ServerId;

/// Uniform degradation applied to every inter-server link while active.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkDegradation {
    /// Latency added to every cross-server delivery and transfer.
    pub extra_latency: SimDuration,
    /// Multiplier on effective link bandwidth (0 < factor <= 1).
    pub bandwidth_factor: f64,
    /// Per-mille probability that a cross-server message is dropped.
    pub drop_per_mille: u32,
}

impl Default for LinkDegradation {
    fn default() -> Self {
        LinkDegradation {
            extra_latency: SimDuration::ZERO,
            bandwidth_factor: 1.0,
            drop_per_mille: 0,
        }
    }
}

/// Active network faults: a set of partitioned server groups plus an
/// optional link degradation.
///
/// A partition entry severs every link between a server inside the group and
/// a server outside it; traffic within the group (and among the remainder)
/// flows normally, matching the "partition between server groups" fault of
/// the chaos plan.
#[derive(Debug, Default)]
pub struct NetFaults {
    partitions: Vec<BTreeSet<ServerId>>,
    degradation: Option<LinkDegradation>,
}

impl NetFaults {
    /// Creates the no-fault state.
    pub fn new() -> Self {
        NetFaults::default()
    }

    /// Returns `true` when no partition or degradation is active.
    pub fn is_clear(&self) -> bool {
        self.partitions.is_empty() && self.degradation.is_none()
    }

    /// Severs the links between `group` and the rest of the cluster.
    pub fn start_partition(&mut self, group: impl IntoIterator<Item = ServerId>) {
        let set: BTreeSet<ServerId> = group.into_iter().collect();
        if !set.is_empty() {
            self.partitions.push(set);
        }
    }

    /// Heals every active partition; returns how many were healed.
    pub fn heal_partitions(&mut self) -> usize {
        let healed = self.partitions.len();
        self.partitions.clear();
        healed
    }

    /// Number of active partition groups.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Returns `true` when the link between `a` and `b` is severed by any
    /// active partition. A server always reaches itself.
    pub fn severed(&self, a: ServerId, b: ServerId) -> bool {
        if a == b {
            return false;
        }
        self.partitions
            .iter()
            .any(|group| group.contains(&a) != group.contains(&b))
    }

    /// Activates (replacing any previous) link degradation.
    pub fn set_degradation(&mut self, degradation: LinkDegradation) {
        self.degradation = Some(degradation);
    }

    /// Clears link degradation; returns `true` if one was active.
    pub fn clear_degradation(&mut self) -> bool {
        self.degradation.take().is_some()
    }

    /// The active degradation, if any.
    pub fn degradation(&self) -> Option<&LinkDegradation> {
        self.degradation.as_ref()
    }

    /// Latency added to cross-server traffic right now.
    pub fn extra_latency(&self) -> SimDuration {
        self.degradation
            .as_ref()
            .map(|d| d.extra_latency)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Effective bandwidth multiplier right now (1.0 when clear).
    pub fn bandwidth_factor(&self) -> f64 {
        self.degradation
            .as_ref()
            .map(|d| d.bandwidth_factor.clamp(1e-6, 1.0))
            .unwrap_or(1.0)
    }

    /// Per-mille drop probability for cross-server messages right now.
    pub fn drop_per_mille(&self) -> u32 {
        self.degradation
            .as_ref()
            .map(|d| d.drop_per_mille.min(1000))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn clear_state_is_identity() {
        let f = NetFaults::new();
        assert!(f.is_clear());
        assert!(!f.severed(s(0), s(1)));
        assert_eq!(f.extra_latency(), SimDuration::ZERO);
        assert_eq!(f.bandwidth_factor(), 1.0);
        assert_eq!(f.drop_per_mille(), 0);
    }

    #[test]
    fn partition_severs_across_but_not_within_groups() {
        let mut f = NetFaults::new();
        f.start_partition([s(0), s(1)]);
        assert!(f.severed(s(0), s(2)));
        assert!(f.severed(s(2), s(1)), "severing is symmetric");
        assert!(!f.severed(s(0), s(1)), "within the group");
        assert!(!f.severed(s(2), s(3)), "within the remainder");
        assert!(!f.severed(s(0), s(0)), "self-links never sever");
        assert_eq!(f.heal_partitions(), 1);
        assert!(!f.severed(s(0), s(2)));
    }

    #[test]
    fn empty_partition_groups_are_ignored() {
        let mut f = NetFaults::new();
        f.start_partition(std::iter::empty());
        assert!(f.is_clear());
    }

    #[test]
    fn degradation_clamps_and_clears() {
        let mut f = NetFaults::new();
        f.set_degradation(LinkDegradation {
            extra_latency: SimDuration::from_millis(5),
            bandwidth_factor: 0.0,
            drop_per_mille: 5000,
        });
        assert!(f.bandwidth_factor() > 0.0, "factor clamps away from zero");
        assert_eq!(f.drop_per_mille(), 1000);
        assert_eq!(f.extra_latency(), SimDuration::from_millis(5));
        assert!(f.clear_degradation());
        assert!(f.is_clear());
    }
}
