//! A simulated server: an instance with utilization meters.

use std::fmt;

use serde::{Deserialize, Serialize};

use plasma_sim::metrics::BusyMeter;
use plasma_sim::{SimDuration, SimTime};

use crate::instance::InstanceType;
use crate::resources::ResourceUsage;

/// Identifier of a server within a [`Cluster`](crate::Cluster).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Lifecycle state of a server.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ServerState {
    /// Requested from the provider; becomes usable at the contained time.
    Booting {
        /// Instant at which the server finishes booting.
        ready_at: SimTime,
    },
    /// Accepting actors and processing messages.
    Running,
    /// Decommissioned; holds no actors and accrues no further cost.
    Stopped,
    /// Crash-stopped by fault injection: volatile state is gone, cost is
    /// frozen, but the slot may come back via [`Server::restart`].
    Crashed,
}

/// A server: static instance description plus rolling utilization meters.
///
/// CPU is metered as busy lane-time (fed by the actor scheduler), network as
/// bytes sent+received in the current window, and memory as the sum of
/// resident actor state. [`Server::roll_usage`] closes the current window and
/// returns utilization fractions — exactly the server-level signals the EPL's
/// `server.cpu/mem/net` features read.
#[derive(Debug, Clone)]
pub struct Server {
    id: ServerId,
    itype: InstanceType,
    state: ServerState,
    started_at: SimTime,
    stopped_at: Option<SimTime>,
    /// Cost accrued in lifetimes before the most recent (re)start; stays
    /// exactly `0.0` for servers that never crashed, so `prior_cost + x`
    /// is bit-identical to `x` on the fault-free path.
    prior_cost: f64,
    cpu: BusyMeter,
    net_window_start: SimTime,
    net_bytes: u64,
    mem_used: u64,
    /// Most recent utilization snapshot (from the last `roll_usage`).
    last_usage: ResourceUsage,
}

impl Server {
    /// Creates a server in the `Booting` state.
    pub fn new(id: ServerId, itype: InstanceType, requested_at: SimTime) -> Self {
        let ready_at = requested_at + itype.boot_delay;
        Server {
            id,
            itype,
            state: ServerState::Booting { ready_at },
            started_at: requested_at,
            stopped_at: None,
            prior_cost: 0.0,
            cpu: BusyMeter::new(),
            net_window_start: requested_at,
            net_bytes: 0,
            mem_used: 0,
            last_usage: ResourceUsage::ZERO,
        }
    }

    /// Returns this server's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Returns the instance flavor.
    pub fn instance(&self) -> &InstanceType {
        &self.itype
    }

    /// Returns the lifecycle state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Returns `true` if the server is accepting work.
    pub fn is_running(&self) -> bool {
        self.state == ServerState::Running
    }

    /// Transitions `Booting -> Running`; resets meter windows to `now`.
    pub fn mark_running(&mut self, now: SimTime) {
        self.state = ServerState::Running;
        self.cpu.roll(now, self.itype.vcpus);
        self.net_window_start = now;
        self.net_bytes = 0;
    }

    /// Transitions to `Stopped` and freezes cost accrual.
    pub fn mark_stopped(&mut self, now: SimTime) {
        self.state = ServerState::Stopped;
        self.stopped_at = Some(now);
    }

    /// Returns `true` if the server is crash-stopped.
    pub fn is_crashed(&self) -> bool {
        self.state == ServerState::Crashed
    }

    /// Crash-stops the server: cost accrued so far is folded into
    /// `prior_cost` and frozen; volatile meters stop advancing.
    pub fn mark_crashed(&mut self, now: SimTime) {
        self.prior_cost += self.itype.cost_between(self.started_at, now);
        self.started_at = now;
        self.stopped_at = Some(now);
        self.state = ServerState::Crashed;
    }

    /// Reboots a crashed server; it becomes `Booting` and is usable at the
    /// returned instant (cost accrual resumes from `now`).
    pub fn restart(&mut self, now: SimTime) -> SimTime {
        debug_assert!(self.is_crashed(), "only crashed servers restart");
        let ready_at = now + self.itype.boot_delay;
        self.started_at = now;
        self.stopped_at = None;
        self.state = ServerState::Booting { ready_at };
        ready_at
    }

    /// Adds CPU busy time (one lane busy for `d`).
    pub fn add_cpu_busy(&mut self, d: SimDuration) {
        self.cpu.add_busy(d);
    }

    /// Adds bytes crossing this server's NIC (sent or received).
    pub fn add_net_bytes(&mut self, bytes: u64) {
        self.net_bytes += bytes;
    }

    /// Adds resident memory (actor state placed here).
    pub fn add_mem(&mut self, bytes: u64) {
        self.mem_used += bytes;
    }

    /// Releases resident memory (actor state leaving this server).
    pub fn remove_mem(&mut self, bytes: u64) {
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Returns resident memory in bytes.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Closes the current metering window at `now` and returns utilization
    /// fractions for CPU, memory and network.
    pub fn roll_usage(&mut self, now: SimTime) -> ResourceUsage {
        let cpu = self.cpu.roll(now, self.itype.vcpus);
        let elapsed = now.saturating_since(self.net_window_start).as_secs_f64();
        let net = if elapsed > 0.0 && self.itype.net_bps > 0.0 {
            (self.net_bytes as f64 * 8.0 / (self.itype.net_bps * elapsed)).min(1.0)
        } else {
            0.0
        };
        self.net_window_start = now;
        self.net_bytes = 0;
        let mem = if self.itype.mem_bytes > 0 {
            (self.mem_used as f64 / self.itype.mem_bytes as f64).min(1.0)
        } else {
            0.0
        };
        self.last_usage = ResourceUsage::new(cpu, mem, net);
        self.last_usage
    }

    /// Returns the most recent utilization snapshot without rolling.
    pub fn last_usage(&self) -> ResourceUsage {
        self.last_usage
    }

    /// Returns the cost accrued by this server up to `now`.
    pub fn cost(&self, now: SimTime) -> f64 {
        let end = self.stopped_at.unwrap_or(now).min(now);
        self.prior_cost
            + self
                .itype
                .cost_between(self.started_at, end.max(self.started_at))
    }

    /// Returns the instant the server was requested.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerId(0), InstanceType::m1_small(), SimTime::ZERO)
    }

    #[test]
    fn boot_lifecycle() {
        let mut s = server();
        match s.state() {
            ServerState::Booting { ready_at } => {
                assert_eq!(
                    ready_at,
                    SimTime::ZERO + InstanceType::m1_small().boot_delay
                )
            }
            other => panic!("unexpected state {other:?}"),
        }
        assert!(!s.is_running());
        s.mark_running(SimTime::from_secs(45));
        assert!(s.is_running());
        s.mark_stopped(SimTime::from_secs(100));
        assert_eq!(s.state(), ServerState::Stopped);
    }

    #[test]
    fn cpu_utilization_rolls() {
        let mut s = server();
        s.mark_running(SimTime::ZERO);
        s.add_cpu_busy(SimDuration::from_millis(250));
        let u = s.roll_usage(SimTime::from_secs(1));
        assert!((u.cpu() - 0.25).abs() < 1e-9);
        // The window reset: same busy time over 0.5s doubles utilization.
        s.add_cpu_busy(SimDuration::from_millis(250));
        let u = s.roll_usage(SimTime::from_millis(1_500));
        assert!((u.cpu() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn net_utilization() {
        let mut s = server();
        s.mark_running(SimTime::ZERO);
        // m1.small NIC = 250 Mbps. 12.5 MB in 1s = 100 Mbps = 40%.
        s.add_net_bytes(12_500_000);
        let u = s.roll_usage(SimTime::from_secs(1));
        assert!((u.net() - 0.4).abs() < 1e-9, "net {}", u.net());
    }

    #[test]
    fn mem_utilization_tracks_state() {
        let mut s = server();
        s.mark_running(SimTime::ZERO);
        let cap = s.instance().mem_bytes;
        s.add_mem(cap / 2);
        let u = s.roll_usage(SimTime::from_secs(1));
        assert!((u.mem() - 0.5).abs() < 1e-9);
        s.remove_mem(cap); // Saturates at zero rather than underflowing.
        assert_eq!(s.mem_used(), 0);
    }

    #[test]
    fn crash_freezes_cost_and_restart_resumes_it() {
        let mut s = server();
        s.mark_running(SimTime::ZERO);
        s.mark_crashed(SimTime::from_secs(3600));
        assert!(s.is_crashed());
        let at_crash = s.cost(SimTime::from_secs(3600));
        assert_eq!(at_crash, s.cost(SimTime::from_secs(7200)), "cost frozen");
        assert!((at_crash - s.instance().hourly_cost).abs() < 1e-12);
        let ready_at = s.restart(SimTime::from_secs(7200));
        assert_eq!(ready_at, SimTime::from_secs(7200) + s.instance().boot_delay);
        assert!(matches!(s.state(), ServerState::Booting { .. }));
        s.mark_running(ready_at);
        // One more hour after the restart: prior cost is preserved.
        let later = s.cost(SimTime::from_secs(7200 + 3600));
        assert!((later - 2.0 * s.instance().hourly_cost).abs() < 1e-9);
    }

    #[test]
    fn cost_freezes_at_stop() {
        let mut s = server();
        s.mark_running(SimTime::ZERO);
        s.mark_stopped(SimTime::from_secs(3600));
        let at_stop = s.cost(SimTime::from_secs(3600));
        let later = s.cost(SimTime::from_secs(7200));
        assert_eq!(at_stop, later);
        assert!((at_stop - s.instance().hourly_cost).abs() < 1e-12);
    }
}
