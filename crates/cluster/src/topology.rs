//! Cluster membership: the server registry and provisioning mechanics.

use serde::{Deserialize, Serialize};

use plasma_sim::metrics::TimeSeries;
use plasma_sim::SimTime;
use plasma_trace::{Component, TraceEventKind, Tracer};

use crate::instance::InstanceType;
use crate::netfault::NetFaults;
use crate::network::NetworkModel;
use crate::server::{Server, ServerId, ServerState};

/// Static limits on cluster growth, mirroring the paper's setups
/// (e.g., §5.6 scales from 4 to at most 65 instances).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterLimits {
    /// Maximum number of servers that may exist concurrently.
    pub max_servers: usize,
    /// Minimum number of running servers `decommission` must preserve.
    pub min_servers: usize,
}

impl Default for ClusterLimits {
    fn default() -> Self {
        ClusterLimits {
            max_servers: 128,
            min_servers: 1,
        }
    }
}

/// One server lifecycle transition, journaled for the execution backend.
///
/// The runtime drains these (see [`Cluster::drain_lifecycle`]) and forwards
/// them to the carrier so worker threads come and go exactly when servers
/// do, regardless of which path (boot, reboot, crash, decommission) caused
/// the transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// The server that transitioned.
    pub server: ServerId,
    /// `true` when the server became running, `false` when it stopped
    /// (decommission or crash).
    pub up: bool,
    /// The server's vCPU count (carried so consumers need not re-look it up).
    pub vcpus: u32,
}

/// The server registry: owns every [`Server`], handles provisioning and
/// decommissioning, and records the running-server count over time
/// (the series plotted in Fig. 10b).
#[derive(Debug)]
pub struct Cluster {
    servers: Vec<Server>,
    network: NetworkModel,
    limits: ClusterLimits,
    net_faults: NetFaults,
    server_count_series: TimeSeries,
    lifecycle: Vec<LifecycleEvent>,
    tracer: Tracer,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(network: NetworkModel, limits: ClusterLimits) -> Self {
        Cluster {
            servers: Vec::new(),
            network,
            limits,
            net_faults: NetFaults::new(),
            server_count_series: TimeSeries::new(),
            lifecycle: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the tracer provisioning events are emitted to.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Returns the interconnect model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Returns the growth limits.
    pub fn limits(&self) -> &ClusterLimits {
        &self.limits
    }

    /// Active network faults (partitions, link degradation).
    pub fn net_faults(&self) -> &NetFaults {
        &self.net_faults
    }

    /// Mutable access to the network-fault state (fault injection only).
    pub fn net_faults_mut(&mut self) -> &mut NetFaults {
        &mut self.net_faults
    }

    /// Requests a new server of the given flavor.
    ///
    /// Returns the new id and the instant it becomes usable, or `None` if
    /// the `max_servers` limit is reached. The caller is responsible for
    /// scheduling a boot-completion event and then calling
    /// [`Cluster::mark_running`].
    pub fn request_server(
        &mut self,
        itype: InstanceType,
        now: SimTime,
    ) -> Option<(ServerId, SimTime)> {
        if self.active_count() >= self.limits.max_servers {
            return None;
        }
        let id = ServerId(self.servers.len() as u32);
        let server = Server::new(id, itype, now);
        let ready_at = match server.state() {
            ServerState::Booting { ready_at } => ready_at,
            _ => unreachable!("new servers always boot"),
        };
        self.servers.push(server);
        self.tracer.emit(now, Component::Provisioner, None, || {
            TraceEventKind::ServerBoot {
                server: id.0,
                instance: self.servers[id.0 as usize].instance().name.clone(),
                ready_at_us: ready_at.as_micros(),
            }
        });
        Some((id, ready_at))
    }

    /// Provisions a server that is usable immediately (initial deployment).
    pub fn add_running_server(&mut self, itype: InstanceType, now: SimTime) -> ServerId {
        let (id, _) = self
            .request_server(itype, now)
            .expect("initial deployment exceeds max_servers");
        self.mark_running(id, now);
        id
    }

    /// Marks a booting server as running and records the new count.
    pub fn mark_running(&mut self, id: ServerId, now: SimTime) {
        self.servers[id.0 as usize].mark_running(now);
        let count = self.running_count();
        self.server_count_series.push(now, count as f64);
        self.lifecycle.push(LifecycleEvent {
            at: now,
            server: id,
            up: true,
            vcpus: self.servers[id.0 as usize].instance().vcpus,
        });
    }

    /// Stops a running server.
    ///
    /// Returns `false` (and does nothing) if stopping would violate
    /// `min_servers` or the server is not running. The caller must have
    /// already drained its actors.
    pub fn decommission(&mut self, id: ServerId, now: SimTime) -> bool {
        if self.running_count() <= self.limits.min_servers {
            return false;
        }
        if !self.servers[id.0 as usize].is_running() {
            return false;
        }
        self.servers[id.0 as usize].mark_stopped(now);
        let count = self.running_count();
        self.server_count_series.push(now, count as f64);
        self.lifecycle.push(LifecycleEvent {
            at: now,
            server: id,
            up: false,
            vcpus: self.servers[id.0 as usize].instance().vcpus,
        });
        self.tracer.emit(now, Component::Provisioner, None, || {
            TraceEventKind::ServerDrain { server: id.0 }
        });
        true
    }

    /// Crash-stops a running server (fault injection).
    ///
    /// Unlike [`Cluster::decommission`] this ignores `min_servers` — faults
    /// do not ask permission — and leaves the slot eligible for
    /// [`Cluster::restart`]. Returns `false` if the server is not running.
    pub fn crash(&mut self, id: ServerId, now: SimTime) -> bool {
        // Fault plans may name servers that were never provisioned (or were
        // decommissioned): crashing nothing is a no-op, not a panic.
        if id.0 as usize >= self.servers.len() || !self.servers[id.0 as usize].is_running() {
            return false;
        }
        self.servers[id.0 as usize].mark_crashed(now);
        let count = self.running_count();
        self.server_count_series.push(now, count as f64);
        self.lifecycle.push(LifecycleEvent {
            at: now,
            server: id,
            up: false,
            vcpus: self.servers[id.0 as usize].instance().vcpus,
        });
        true
    }

    /// Reboots a crashed server; it becomes `Booting` and is usable at the
    /// returned instant. Returns `None` if the server is not crashed.
    pub fn restart(&mut self, id: ServerId, now: SimTime) -> Option<SimTime> {
        if id.0 as usize >= self.servers.len() || !self.servers[id.0 as usize].is_crashed() {
            return None;
        }
        let ready_at = self.servers[id.0 as usize].restart(now);
        self.tracer.emit(now, Component::Provisioner, None, || {
            TraceEventKind::ServerBoot {
                server: id.0,
                instance: self.servers[id.0 as usize].instance().name.clone(),
                ready_at_us: ready_at.as_micros(),
            }
        });
        Some(ready_at)
    }

    /// Returns the ids of all crash-stopped servers, in id order.
    pub fn crashed_ids(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|s| s.is_crashed())
            .map(|s| s.id())
            .collect()
    }

    /// Returns a shared reference to a server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0 as usize]
    }

    /// Returns a mutable reference to a server.
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        &mut self.servers[id.0 as usize]
    }

    /// Returns the ids of all running servers, in id order.
    pub fn running_ids(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|s| s.is_running())
            .map(|s| s.id())
            .collect()
    }

    /// Returns the number of running servers.
    pub fn running_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_running()).count()
    }

    /// Returns the number of running or booting servers.
    pub fn active_count(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.state() != ServerState::Stopped)
            .count()
    }

    /// Returns every server ever created (including stopped ones).
    pub fn all_servers(&self) -> &[Server] {
        &self.servers
    }

    /// Returns the accumulated cost of all servers up to `now`.
    pub fn total_cost(&self, now: SimTime) -> f64 {
        self.servers.iter().map(|s| s.cost(now)).sum()
    }

    /// Returns the running-server-count series (Fig. 10b).
    pub fn server_count_series(&self) -> &TimeSeries {
        &self.server_count_series
    }

    /// Whether lifecycle transitions are waiting to be drained.
    pub fn has_lifecycle_events(&self) -> bool {
        !self.lifecycle.is_empty()
    }

    /// Takes the journaled lifecycle transitions, in occurrence order.
    pub fn drain_lifecycle(&mut self) -> Vec<LifecycleEvent> {
        std::mem::take(&mut self.lifecycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_sim::SimDuration;

    fn cluster() -> Cluster {
        Cluster::new(
            NetworkModel::default(),
            ClusterLimits {
                max_servers: 4,
                min_servers: 1,
            },
        )
    }

    #[test]
    fn provisioning_respects_max() {
        let mut c = cluster();
        for _ in 0..4 {
            assert!(c
                .request_server(InstanceType::m1_small(), SimTime::ZERO)
                .is_some());
        }
        assert!(c
            .request_server(InstanceType::m1_small(), SimTime::ZERO)
            .is_none());
        assert_eq!(c.active_count(), 4);
        assert_eq!(c.running_count(), 0);
    }

    #[test]
    fn boot_then_run() {
        let mut c = cluster();
        let (id, ready_at) = c
            .request_server(InstanceType::m1_small(), SimTime::from_secs(10))
            .unwrap();
        assert_eq!(
            ready_at,
            SimTime::from_secs(10) + InstanceType::m1_small().boot_delay
        );
        c.mark_running(id, ready_at);
        assert_eq!(c.running_count(), 1);
        assert_eq!(c.running_ids(), vec![id]);
    }

    #[test]
    fn decommission_respects_min() {
        let mut c = cluster();
        let a = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        let b = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        assert!(c.decommission(b, SimTime::from_secs(1)));
        assert!(!c.decommission(a, SimTime::from_secs(2)), "min_servers=1");
        assert_eq!(c.running_count(), 1);
    }

    #[test]
    fn decommission_twice_is_rejected() {
        let mut c = cluster();
        let _a = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        let b = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        assert!(c.decommission(b, SimTime::from_secs(1)));
        assert!(!c.decommission(b, SimTime::from_secs(2)));
    }

    #[test]
    fn stopped_slots_free_capacity() {
        let mut c = cluster();
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(c.add_running_server(InstanceType::m1_small(), SimTime::ZERO));
        }
        assert!(c
            .request_server(InstanceType::m1_small(), SimTime::ZERO)
            .is_none());
        assert!(c.decommission(ids[3], SimTime::from_secs(1)));
        assert!(c
            .request_server(InstanceType::m1_small(), SimTime::from_secs(2))
            .is_some());
    }

    #[test]
    fn crash_and_restart_cycle() {
        let mut c = cluster();
        let a = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        let _b = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        assert!(c.crash(a, SimTime::from_secs(5)));
        assert!(!c.crash(a, SimTime::from_secs(6)), "already crashed");
        assert_eq!(c.crashed_ids(), vec![a]);
        assert_eq!(c.running_count(), 1);
        // Crashed servers still hold a provider slot.
        assert_eq!(c.active_count(), 2);
        let ready_at = c.restart(a, SimTime::from_secs(10)).unwrap();
        assert!(c.restart(a, SimTime::from_secs(11)).is_none(), "booting");
        c.mark_running(a, ready_at);
        assert_eq!(c.running_count(), 2);
        assert!(c.crashed_ids().is_empty());
    }

    #[test]
    fn crash_ignores_min_servers() {
        let mut c = cluster();
        let a = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        assert!(!c.decommission(a, SimTime::from_secs(1)), "min_servers=1");
        assert!(c.crash(a, SimTime::from_secs(1)), "faults do not ask");
        assert_eq!(c.running_count(), 0);
    }

    #[test]
    fn server_count_series_records_changes() {
        let mut c = cluster();
        let _ = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        let b = c.add_running_server(InstanceType::m1_small(), SimTime::from_secs(5));
        c.decommission(b, SimTime::from_secs(10));
        let pts = c.server_count_series().points();
        let counts: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
        assert_eq!(counts, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn lifecycle_journal_covers_every_transition_path() {
        let mut c = cluster();
        let a = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        let b = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        c.decommission(b, SimTime::from_secs(1));
        c.crash(a, SimTime::from_secs(2));
        let ready = c.restart(a, SimTime::from_secs(3)).unwrap();
        c.mark_running(a, ready);
        assert!(c.has_lifecycle_events());
        let journal = c.drain_lifecycle();
        let ups: Vec<(u32, bool)> = journal.iter().map(|e| (e.server.0, e.up)).collect();
        assert_eq!(
            ups,
            vec![
                (a.0, true),
                (b.0, true),
                (b.0, false),
                (a.0, false),
                (a.0, true)
            ]
        );
        assert!(journal.iter().all(|e| e.vcpus == 1));
        assert!(!c.has_lifecycle_events(), "drain takes everything");
    }

    #[test]
    fn total_cost_accumulates() {
        let mut c = cluster();
        let _ = c.add_running_server(InstanceType::m1_small(), SimTime::ZERO);
        let one_hour = c.total_cost(SimTime::from_secs(3600));
        let two_hours = c.total_cost(SimTime::from_secs(7200));
        assert!(two_hours > one_hour);
        let _ = SimDuration::ZERO; // Keep the import exercised in this cfg.
    }
}
