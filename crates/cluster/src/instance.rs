//! Cloud instance types with capacities calibrated to the paper's testbed.
//!
//! The paper deploys on AWS `m1.small`, `m1.medium` and `m5.large` instances.
//! Absolute AWS performance is irrelevant to the reproduced figures; what
//! matters is the *ratio* structure: an `m1.small` is a single slow vCPU that
//! saturates under modest load (§5.3, §5.5), an `m1.medium` is roughly twice
//! as fast (used for clients), and an `m5.large` has 2 modern vCPUs and a
//! 10 Gbps NIC (§5.4).

use serde::{Deserialize, Serialize};

use plasma_sim::{SimDuration, SimTime};

/// Static description of a server flavor.
///
/// One *work unit* is defined as one second of compute on a `speed = 1.0`
/// vCPU, so [`InstanceType::service_time`] for `work = 0.001` on an
/// `m1.small` is one millisecond.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Flavor name, e.g. `"m1.small"`.
    pub name: String,
    /// Number of parallel CPU lanes.
    pub vcpus: u32,
    /// Work units per second per vCPU (relative clock speed).
    pub speed: f64,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// NIC bandwidth in bits per second.
    pub net_bps: f64,
    /// Delay between requesting the instance and it becoming usable.
    pub boot_delay: SimDuration,
    /// Relative cost per hour, for resource-saving accounting (Fig. 8).
    pub hourly_cost: f64,
}

impl InstanceType {
    /// AWS `m1.small`: one slow vCPU — the paper's "easily overloaded" tier.
    pub fn m1_small() -> Self {
        InstanceType {
            name: "m1.small".to_string(),
            vcpus: 1,
            speed: 1.0,
            mem_bytes: 1_700 << 20,
            net_bps: 250e6,
            boot_delay: SimDuration::from_secs(45),
            hourly_cost: 0.044,
        }
    }

    /// AWS `m1.medium`: one vCPU at roughly double the `m1.small` speed.
    pub fn m1_medium() -> Self {
        InstanceType {
            name: "m1.medium".to_string(),
            vcpus: 1,
            speed: 2.0,
            mem_bytes: 3_750 << 20,
            net_bps: 500e6,
            boot_delay: SimDuration::from_secs(45),
            hourly_cost: 0.087,
        }
    }

    /// AWS `m5.large`: 2 vCPUs, 8 GB, 10 Gbps — the PageRank tier (§5.4).
    pub fn m5_large() -> Self {
        InstanceType {
            name: "m5.large".to_string(),
            vcpus: 2,
            speed: 2.5,
            mem_bytes: 8 << 30,
            net_bps: 10e9,
            boot_delay: SimDuration::from_secs(40),
            hourly_cost: 0.096,
        }
    }

    /// Returns the time to execute `work` units on one lane of this flavor.
    ///
    /// Negative or non-finite work is treated as zero.
    pub fn service_time(&self, work: f64) -> SimDuration {
        if !work.is_finite() || work <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(work / self.speed)
    }

    /// Returns the total compute throughput (work units per second).
    pub fn total_speed(&self) -> f64 {
        self.speed * self.vcpus as f64
    }

    /// Returns the cost accrued by running this flavor from `from` to `to`.
    pub fn cost_between(&self, from: SimTime, to: SimTime) -> f64 {
        self.hourly_cost * to.saturating_since(from).as_secs_f64() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ratios() {
        let small = InstanceType::m1_small();
        let medium = InstanceType::m1_medium();
        let large = InstanceType::m5_large();
        assert_eq!(small.vcpus, 1);
        assert_eq!(large.vcpus, 2);
        assert!(medium.speed > small.speed);
        assert!(large.net_bps > medium.net_bps);
        assert!(large.total_speed() > medium.total_speed());
    }

    #[test]
    fn service_time_scales_with_speed() {
        let small = InstanceType::m1_small();
        let medium = InstanceType::m1_medium();
        let w = 0.010;
        assert_eq!(small.service_time(w), SimDuration::from_millis(10));
        assert_eq!(medium.service_time(w), SimDuration::from_millis(5));
    }

    #[test]
    fn service_time_handles_degenerate_work() {
        let small = InstanceType::m1_small();
        assert_eq!(small.service_time(0.0), SimDuration::ZERO);
        assert_eq!(small.service_time(-1.0), SimDuration::ZERO);
        assert_eq!(small.service_time(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn cost_accrues_per_hour() {
        let small = InstanceType::m1_small();
        let cost = small.cost_between(SimTime::ZERO, SimTime::from_secs(3600));
        assert!((cost - small.hourly_cost).abs() < 1e-12);
    }
}
