//! Balanced graph partitioning (the METIS stand-in).
//!
//! [`partition_balanced`] mimics what the paper uses METIS for: partitions
//! balanced in vertex count with a reduced edge cut. It grows regions by
//! BFS from spread-out seeds, then runs a boundary-refinement pass moving
//! vertices to the neighboring partition that hosts most of their edges,
//! subject to a balance constraint. [`partition_random`] is the
//! no-structure baseline.

use plasma_sim::DetRng;

use crate::graph::Graph;

/// An assignment of every vertex to one of `k` parts.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// `assignment[v]` is the part of vertex `v`.
    pub assignment: Vec<u32>,
    /// Number of parts.
    pub parts: u32,
}

impl Partitioning {
    /// Returns the number of vertices in each part.
    pub fn part_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Returns, per part, the number of edges whose *source* lives in the
    /// part — the PageRank work a worker owning the part must do each
    /// iteration.
    pub fn part_edges(&self, graph: &Graph) -> Vec<u64> {
        let mut edges = vec![0u64; self.parts as usize];
        for v in 0..graph.vertex_count() {
            edges[self.assignment[v as usize] as usize] += graph.out_degree(v);
        }
        edges
    }

    /// Returns the number of directed edges crossing parts.
    pub fn edge_cut(&self, graph: &Graph) -> u64 {
        let mut cut = 0;
        for v in 0..graph.vertex_count() {
            let pv = self.assignment[v as usize];
            for &w in graph.out_neighbors(v) {
                if self.assignment[w as usize] != pv {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Returns the vertex imbalance: max part size over the ideal size.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignment.len() as f64 / self.parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }

    /// Returns the `k x k` matrix of directed cross-part edge counts:
    /// `m[i][j]` is the number of edges from part `i` to part `j != i`
    /// (diagonal entries are zero). This drives pairwise update traffic in
    /// the distributed PageRank.
    pub fn cut_matrix(&self, graph: &Graph) -> Vec<Vec<u64>> {
        let k = self.parts as usize;
        let mut m = vec![vec![0u64; k]; k];
        for v in 0..graph.vertex_count() {
            let pv = self.assignment[v as usize] as usize;
            for &w in graph.out_neighbors(v) {
                let pw = self.assignment[w as usize] as usize;
                if pw != pv {
                    m[pv][pw] += 1;
                }
            }
        }
        m
    }

    /// Returns, per part, the number of cut edges incident to it (the
    /// boundary traffic a PageRank worker exchanges each iteration).
    pub fn boundary_edges(&self, graph: &Graph) -> Vec<u64> {
        let mut boundary = vec![0u64; self.parts as usize];
        for v in 0..graph.vertex_count() {
            let pv = self.assignment[v as usize];
            for &w in graph.out_neighbors(v) {
                let pw = self.assignment[w as usize];
                if pw != pv {
                    boundary[pv as usize] += 1;
                    boundary[pw as usize] += 1;
                }
            }
        }
        boundary
    }
}

/// Assigns vertices to parts uniformly at random (balanced in expectation).
pub fn partition_random(graph: &Graph, k: u32, rng: &mut DetRng) -> Partitioning {
    let mut assignment: Vec<u32> = (0..graph.vertex_count()).map(|v| v % k).collect();
    rng.shuffle(&mut assignment);
    Partitioning {
        assignment,
        parts: k,
    }
}

/// Produces a vertex-balanced partitioning with reduced edge cut.
///
/// `balance_slack` bounds part growth: no part exceeds
/// `ceil(n / k) * balance_slack` vertices (METIS defaults to ~3% slack;
/// 1.03 is a good value).
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty.
pub fn partition_balanced(
    graph: &Graph,
    k: u32,
    balance_slack: f64,
    rng: &mut DetRng,
) -> Partitioning {
    assert!(k > 0, "need at least one part");
    let n = graph.vertex_count();
    assert!(n > 0, "empty graph");
    let cap = ((n as f64 / k as f64).ceil() * balance_slack).ceil() as u64;
    let mut assignment = vec![u32::MAX; n as usize];
    let mut sizes = vec![0u64; k as usize];

    // Phase 1: BFS region growing from k spread-out seeds.
    let mut order: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut queues: Vec<std::collections::VecDeque<u32>> =
        (0..k).map(|_| std::collections::VecDeque::new()).collect();
    for (p, &seed) in order.iter().take(k as usize).enumerate() {
        queues[p].push_back(seed);
    }
    let mut unassigned = n as u64;
    let mut fallback_cursor = 0usize;
    while unassigned > 0 {
        let mut progressed = false;
        for p in 0..k as usize {
            if sizes[p] >= cap {
                continue;
            }
            // Grow this region by one vertex.
            let v = loop {
                match queues[p].pop_front() {
                    Some(v) if assignment[v as usize] == u32::MAX => break Some(v),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let v = match v {
                Some(v) => v,
                None => {
                    // Seed exhausted: jump to any unassigned vertex.
                    while fallback_cursor < order.len()
                        && assignment[order[fallback_cursor] as usize] != u32::MAX
                    {
                        fallback_cursor += 1;
                    }
                    match order.get(fallback_cursor) {
                        Some(&v) => v,
                        None => continue,
                    }
                }
            };
            assignment[v as usize] = p as u32;
            sizes[p] += 1;
            unassigned -= 1;
            progressed = true;
            for &w in graph.out_neighbors(v) {
                if assignment[w as usize] == u32::MAX {
                    queues[p].push_back(w);
                }
            }
            if unassigned == 0 {
                break;
            }
        }
        if !progressed {
            // All parts at capacity yet vertices remain (can only happen
            // with tiny slack): place leftovers in the smallest part.
            for v in 0..n {
                if assignment[v as usize] == u32::MAX {
                    let p = sizes
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &s)| s)
                        .map(|(i, _)| i)
                        .expect("k > 0");
                    assignment[v as usize] = p as u32;
                    sizes[p] += 1;
                    unassigned -= 1;
                }
            }
        }
    }

    // Phase 2: boundary refinement. Move vertices toward the neighboring
    // part holding most of their edges when balance allows.
    for _ in 0..2 {
        for v in 0..n {
            let pv = assignment[v as usize];
            let mut counts = vec![0u32; k as usize];
            for &w in graph.out_neighbors(v) {
                counts[assignment[w as usize] as usize] += 1;
            }
            let (best, &best_count) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .expect("k > 0");
            if best as u32 != pv
                && best_count > counts[pv as usize]
                && sizes[best] < cap
                && sizes[pv as usize] > 1
            {
                assignment[v as usize] = best as u32;
                sizes[best] += 1;
                sizes[pv as usize] -= 1;
            }
        }
    }

    Partitioning {
        assignment,
        parts: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::preferential_attachment;

    fn graph() -> Graph {
        preferential_attachment(2_000, 4, &mut DetRng::new(3))
    }

    #[test]
    fn balanced_partition_covers_all_vertices() {
        let g = graph();
        let p = partition_balanced(&g, 8, 1.03, &mut DetRng::new(5));
        assert_eq!(p.assignment.len(), g.vertex_count() as usize);
        assert!(p.assignment.iter().all(|&a| a < 8));
        assert_eq!(p.part_sizes().iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn balanced_partition_respects_slack() {
        let g = graph();
        let p = partition_balanced(&g, 8, 1.03, &mut DetRng::new(5));
        assert!(p.imbalance() <= 1.06, "imbalance {}", p.imbalance());
    }

    #[test]
    fn refinement_beats_random_cut() {
        let g = graph();
        let balanced = partition_balanced(&g, 8, 1.03, &mut DetRng::new(5));
        let random = partition_random(&g, 8, &mut DetRng::new(5));
        assert!(
            balanced.edge_cut(&g) < random.edge_cut(&g),
            "balanced {} vs random {}",
            balanced.edge_cut(&g),
            random.edge_cut(&g)
        );
    }

    #[test]
    fn vertex_balance_does_not_imply_edge_balance_on_power_law() {
        // The crux of §5.4: balanced vertices, skewed work.
        let g = graph();
        let p = partition_balanced(&g, 8, 1.03, &mut DetRng::new(5));
        let edges = p.part_edges(&g);
        let max = *edges.iter().max().unwrap() as f64;
        let min = *edges.iter().min().unwrap() as f64;
        assert!(max / min > 1.15, "edge loads suspiciously even: {edges:?}");
    }

    #[test]
    fn part_edges_sum_to_edge_count() {
        let g = graph();
        let p = partition_balanced(&g, 4, 1.03, &mut DetRng::new(5));
        assert_eq!(p.part_edges(&g).iter().sum::<u64>(), g.edge_count());
    }

    #[test]
    fn cut_matrix_sums_to_edge_cut() {
        let g = graph();
        let p = partition_balanced(&g, 4, 1.03, &mut DetRng::new(5));
        let m = p.cut_matrix(&g);
        let total: u64 = m.iter().flatten().sum();
        assert_eq!(total, p.edge_cut(&g));
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0, "diagonal must be zero");
        }
    }

    #[test]
    fn single_part_has_no_cut() {
        let g = graph();
        let p = partition_balanced(&g, 1, 1.1, &mut DetRng::new(5));
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.boundary_edges(&g), vec![0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::uniform_random;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn partition_is_total_and_bounded(
            n in 16u32..400,
            m in 1u32..4,
            k in 1u32..9,
            seed in 0u64..1_000,
        ) {
            let g = uniform_random(n, m, &mut DetRng::new(seed));
            let p = partition_balanced(&g, k, 1.05, &mut DetRng::new(seed + 1));
            prop_assert_eq!(p.assignment.len(), n as usize);
            prop_assert!(p.assignment.iter().all(|&a| a < k));
            prop_assert_eq!(p.part_sizes().iter().sum::<u64>(), n as u64);
            // Every part non-empty when k <= n.
            if k <= n {
                prop_assert!(p.part_sizes().iter().all(|&s| s > 0), "{:?}", p.part_sizes());
            }
        }
    }
}
