//! A compact directed graph in compressed adjacency form.

/// A directed graph with vertices `0..n`.
///
/// Stored as out-adjacency in CSR form: cheap to iterate, cheap to clone,
/// no per-vertex allocation.
///
/// # Examples
///
/// ```
/// use plasma_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.out_neighbors(0), &[1, 2]);
/// assert_eq!(g.out_degree(2), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list. Duplicate edges are kept.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n as usize];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u}, {v}) out of range 0..{n}");
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor: Vec<u64> = offsets[..n as usize].to_vec();
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        Graph { offsets, targets }
    }

    /// Returns the number of vertices.
    pub fn vertex_count(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Returns the number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Returns the out-neighbors of `v`.
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Returns the out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Computes in-degrees for every vertex.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.vertex_count() as usize];
        for &t in &self.targets {
            deg[t as usize] += 1;
        }
        deg
    }

    /// Returns the maximum out-degree.
    pub fn max_out_degree(&self) -> u64 {
        (0..self.vertex_count())
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_layout() {
        let g = Graph::from_edges(4, &[(1, 0), (1, 2), (3, 1), (1, 3)]);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_neighbors(1), &[0, 2, 3]);
        assert_eq!(g.out_neighbors(3), &[1]);
    }

    #[test]
    fn in_degrees() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2), (2, 0)]);
        assert_eq!(g.in_degrees(), vec![1, 0, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 2)]);
    }
}
