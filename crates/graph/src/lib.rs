#![warn(missing_docs)]

//! Graph substrate for the PageRank experiments (§2.1, §5.4).
//!
//! The paper partitions SNAP's LiveJournal social network with METIS and
//! runs an actor-based PageRank over the partitions. Neither artifact is
//! available here, so this crate provides faithful substitutes (see
//! `DESIGN.md`):
//!
//! - [`gen`] — a seeded preferential-attachment generator producing the
//!   skewed degree distributions that make vertex-balanced partitions have
//!   *unequal work*, the root cause PLASMA's CPU-balance rule addresses.
//! - [`partition`] — a METIS-flavored balanced partitioner (BFS region
//!   growth plus boundary refinement) and a random-assignment baseline.
//! - [`pagerank`] — a reference PageRank and the per-partition work/traffic
//!   model the actor application runs on.

pub mod gen;
pub mod graph;
pub mod pagerank;
pub mod partition;

pub use graph::Graph;
pub use partition::Partitioning;
