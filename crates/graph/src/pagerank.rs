//! PageRank: a sequential reference implementation and the distributed
//! per-partition work model the actor application executes.

use crate::graph::Graph;
use crate::partition::Partitioning;

/// Damping factor used throughout (the classic 0.85).
pub const DAMPING: f64 = 0.85;

/// Runs `iters` synchronous PageRank iterations, returning the rank vector.
///
/// Dangling mass is redistributed uniformly, so the ranks always sum to 1.
///
/// # Examples
///
/// ```
/// use plasma_graph::pagerank::pagerank;
/// use plasma_graph::Graph;
///
/// // 1 and 2 both point at 0, which points back at 1.
/// let g = Graph::from_edges(3, &[(1, 0), (2, 0), (0, 1)]);
/// let ranks = pagerank(&g, 30);
/// assert!(ranks[0] > ranks[1] && ranks[1] > ranks[2]);
/// assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn pagerank(graph: &Graph, iters: u32) -> Vec<f64> {
    let n = graph.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut ranks = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        step(graph, &ranks, &mut next);
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// One synchronous PageRank step: reads `ranks`, writes `next`.
pub fn step(graph: &Graph, ranks: &[f64], next: &mut [f64]) {
    let n = graph.vertex_count() as usize;
    let base = (1.0 - DAMPING) / n as f64;
    let mut dangling = 0.0;
    next.fill(0.0);
    for v in 0..n as u32 {
        let deg = graph.out_degree(v);
        let r = ranks[v as usize];
        if deg == 0 {
            dangling += r;
            continue;
        }
        let share = DAMPING * r / deg as f64;
        for &w in graph.out_neighbors(v) {
            next[w as usize] += share;
        }
    }
    let dangling_share = DAMPING * dangling / n as f64;
    for x in next.iter_mut() {
        *x += base + dangling_share;
    }
}

/// Returns the L1 distance between two rank vectors (convergence check).
pub fn l1_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// The cost model of one distributed PageRank iteration, per partition.
///
/// CPU work scales with the edges a worker processes; network traffic with
/// its boundary (cut) edges — each cut edge ships one 12-byte
/// `(vertex, rank)` update per iteration.
#[derive(Clone, Debug)]
pub struct PartitionCost {
    /// CPU work units per iteration, per partition.
    pub work: Vec<f64>,
    /// Bytes exchanged per iteration, per partition.
    pub traffic: Vec<u64>,
}

/// Work units charged per edge processed (calibrated so a LiveJournal-scale
/// partition takes on the order of a second per iteration on one vCPU).
pub const WORK_PER_EDGE: f64 = 40e-9 * 50.0;

/// Bytes shipped per cut edge per iteration.
pub const BYTES_PER_CUT_EDGE: u64 = 12;

/// Computes the per-iteration cost of every partition.
pub fn partition_costs(graph: &Graph, parts: &Partitioning) -> PartitionCost {
    let edges = parts.part_edges(graph);
    let boundary = parts.boundary_edges(graph);
    PartitionCost {
        work: edges.iter().map(|&e| e as f64 * WORK_PER_EDGE).collect(),
        traffic: boundary.iter().map(|&b| b * BYTES_PER_CUT_EDGE).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::preferential_attachment;
    use crate::partition::partition_balanced;
    use plasma_sim::DetRng;

    #[test]
    fn ranks_sum_to_one() {
        let g = preferential_attachment(1_000, 3, &mut DetRng::new(1));
        let ranks = pagerank(&g, 20);
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_in_degree_gets_high_rank() {
        let g = preferential_attachment(2_000, 3, &mut DetRng::new(2));
        let ranks = pagerank(&g, 30);
        let in_deg = g.in_degrees();
        let hub = in_deg
            .iter()
            .enumerate()
            .max_by_key(|&(_, &d)| d)
            .map(|(i, _)| i)
            .unwrap();
        let leaf = in_deg
            .iter()
            .enumerate()
            .min_by_key(|&(_, &d)| d)
            .map(|(i, _)| i)
            .unwrap();
        assert!(ranks[hub] > 5.0 * ranks[leaf]);
    }

    #[test]
    fn iteration_converges() {
        let g = preferential_attachment(1_000, 3, &mut DetRng::new(3));
        let a = pagerank(&g, 60);
        let b = pagerank(&g, 120);
        let d60 = l1_delta(&a, &b);
        let early = pagerank(&g, 5);
        let d5 = l1_delta(&early, &b);
        assert!(d60 < 1e-3, "delta after 60 iters {d60}");
        assert!(d60 < d5 / 10.0, "converging: {d5} -> {d60}");
    }

    #[test]
    fn dangling_mass_preserved() {
        // Vertex 2 has no out-edges.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let ranks = pagerank(&g, 50);
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn costs_track_partition_structure() {
        let g = preferential_attachment(2_000, 4, &mut DetRng::new(4));
        let p = partition_balanced(&g, 8, 1.03, &mut DetRng::new(5));
        let costs = partition_costs(&g, &p);
        assert_eq!(costs.work.len(), 8);
        let total_work: f64 = costs.work.iter().sum();
        let expected = g.edge_count() as f64 * WORK_PER_EDGE;
        assert!((total_work - expected).abs() < 1e-9);
        // Traffic is symmetric: each cut edge charged to both sides.
        let total_traffic: u64 = costs.traffic.iter().sum();
        assert_eq!(total_traffic, 2 * p.edge_cut(&g) * BYTES_PER_CUT_EDGE);
    }
}
