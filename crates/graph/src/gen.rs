//! Synthetic social-graph generation.
//!
//! LiveJournal (the paper's dataset) is a power-law social network. A
//! preferential-attachment process reproduces the property that matters for
//! the experiments: a heavy-tailed degree distribution, so partitions that
//! are balanced in *vertices* carry very different *edge* (and therefore
//! CPU) loads.

use plasma_sim::DetRng;

use crate::graph::Graph;

/// Generates a directed preferential-attachment (Barabási-Albert style)
/// graph with `n` vertices, each new vertex attaching `m` out-edges to
/// earlier vertices chosen proportionally to their current degree.
///
/// The first `m + 1` vertices form a seed clique-ish core. Deterministic
/// for a given RNG state.
///
/// # Panics
///
/// Panics if `n <= m` or `m == 0`.
///
/// # Examples
///
/// ```
/// use plasma_graph::gen::preferential_attachment;
/// use plasma_sim::DetRng;
///
/// let g = preferential_attachment(1_000, 4, &mut DetRng::new(42));
/// assert_eq!(g.vertex_count(), 1_000);
/// // Heavy tail: the max degree dwarfs the mean.
/// assert!(g.max_out_degree() + g.in_degrees().iter().max().unwrap() > 40);
/// ```
pub fn preferential_attachment(n: u32, m: u32, rng: &mut DetRng) -> Graph {
    assert!(m > 0, "attachment degree must be positive");
    assert!(n > m, "need more vertices than attachment edges");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity((n as usize) * (m as usize));
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * edges.capacity());
    // Seed: a ring over the first m+1 vertices.
    for v in 0..=m {
        let w = (v + 1) % (m + 1);
        edges.push((v, w));
        endpoints.push(v);
        endpoints.push(w);
    }
    for v in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m as usize);
        let mut guard = 0;
        while chosen.len() < m as usize && guard < 10 * m {
            let t = *rng.choose(&endpoints);
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Generates a uniform random directed graph (Erdős-Rényi style) with
/// exactly `n * m` edges — the "no skew" control used by tests.
pub fn uniform_random(n: u32, m: u32, rng: &mut DetRng) -> Graph {
    let mut edges = Vec::with_capacity((n as usize) * (m as usize));
    for u in 0..n {
        for _ in 0..m {
            let mut v = rng.below(n as u64) as u32;
            if v == u {
                v = (v + 1) % n;
            }
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_exact() {
        let mut rng = DetRng::new(1);
        let g = preferential_attachment(500, 3, &mut rng);
        assert_eq!(g.vertex_count(), 500);
        // Seed ring contributes m+1 edges; each later vertex adds up to m.
        assert!(g.edge_count() >= 3 * (500 - 4) + 4);
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let mut rng = DetRng::new(7);
        let g = preferential_attachment(5_000, 4, &mut rng);
        let in_deg = g.in_degrees();
        let max = *in_deg.iter().max().unwrap() as f64;
        let mean = in_deg.iter().sum::<u64>() as f64 / in_deg.len() as f64;
        assert!(
            max > 12.0 * mean,
            "expected heavy tail, max {max} mean {mean}"
        );
    }

    #[test]
    fn uniform_is_not_skewed() {
        let mut rng = DetRng::new(7);
        let g = uniform_random(5_000, 4, &mut rng);
        let in_deg = g.in_degrees();
        let max = *in_deg.iter().max().unwrap() as f64;
        let mean = in_deg.iter().sum::<u64>() as f64 / in_deg.len() as f64;
        assert!(
            max < 6.0 * mean,
            "uniform should be flat, max {max} mean {mean}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = preferential_attachment(1_000, 3, &mut DetRng::new(9));
        let g2 = preferential_attachment(1_000, 3, &mut DetRng::new(9));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in 0..g1.vertex_count() {
            assert_eq!(g1.out_neighbors(v), g2.out_neighbors(v));
        }
    }
}
