//! zExpander-style key-value cache (Table 1).
//!
//! zExpander splits a cache into a small hot tier and a large compressed
//! cold tier. Here an `Index` actor routes gets to `Leaf` cache nodes; a
//! Zipf workload concentrates traffic in a few hot leaves. The Table-1
//! rule "put leaf nodes on idle servers" reserves the hot leaves dedicated
//! capacity when their host saturates.

use plasma::prelude::*;
use plasma_sim::rng::Zipf;
use plasma_sim::SimTime;

/// Schema for the zExpander policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Index").func("route");
    schema.actor_type("Leaf").func("get");
    schema
}

/// The Table-1 zExpander rule.
pub fn policy() -> &'static str {
    "server.cpu.perc > 80 and client.call(Leaf(l).get).perc > 30 => reserve(l, cpu);"
}

/// A cache leaf with real entries.
struct Leaf {
    entries: std::collections::BTreeMap<u64, u64>,
    get_work: f64,
}

impl ActorLogic for Leaf {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(self.get_work);
        let value = msg
            .take_payload::<u64>()
            .map(|k| self.entries.get(&k).copied().unwrap_or(0))
            .unwrap_or(0);
        ctx.reply_with(256, Box::new(value));
    }
}

/// zExpander experiment configuration.
#[derive(Clone, Debug)]
pub struct ZexpanderConfig {
    /// Number of cache leaves.
    pub leaves: usize,
    /// Keys per leaf.
    pub keys_per_leaf: u64,
    /// Zipf skew of key popularity.
    pub zipf: f64,
    /// Clients.
    pub clients: usize,
    /// Run length.
    pub run_for: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZexpanderConfig {
    fn default() -> Self {
        ZexpanderConfig {
            leaves: 8,
            keys_per_leaf: 512,
            zipf: 1.1,
            clients: 16,
            run_for: SimDuration::from_secs(200),
            seed: 43,
        }
    }
}

/// A cache client drawing leaves from a Zipf popularity distribution.
struct CacheClient {
    leaves: Vec<ActorId>,
    zipf: Zipf,
    keys_per_leaf: u64,
    think: SimDuration,
}

impl CacheClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let leaf_idx = self.zipf.sample(ctx.rng());
        let key = ctx.rng().below(self.keys_per_leaf);
        ctx.request_with(self.leaves[leaf_idx], "get", 64, Box::new(key));
    }
}

impl ClientLogic for CacheClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(self.think, 0);
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

/// Results of one zExpander run.
#[derive(Debug)]
pub struct ZexpanderReport {
    /// Server of the hottest leaf at the end.
    pub hot_leaf_moved: bool,
    /// Number of actors sharing the hot leaf's final server.
    pub hot_leaf_neighbors: usize,
    /// Mean latency before/after the first elasticity period (ms).
    pub before_after_ms: (f64, f64),
    /// Migrations performed.
    pub migrations: usize,
}

/// Runs zExpander under the Table-1 policy.
pub fn run(cfg: &ZexpanderConfig) -> ZexpanderReport {
    let period = SimDuration::from_secs(40);
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: cfg.seed,
            elasticity_period: period,
            min_residency: period,
            profile_window: SimDuration::from_secs(5),
            ..RuntimeConfig::default()
        })
        .policy(policy(), &schema())
        .build()
        .expect("zexpander policy compiles");
    let rt = app.runtime_mut();
    let home = rt.add_server(InstanceType::m1_small());
    let _spare = rt.add_server(InstanceType::m1_small());
    let leaves: Vec<ActorId> = (0..cfg.leaves)
        .map(|i| {
            let entries: std::collections::BTreeMap<u64, u64> = (0..cfg.keys_per_leaf)
                .map(|k| (k, k + i as u64 * cfg.keys_per_leaf))
                .collect();
            rt.spawn_actor(
                "Leaf",
                Box::new(Leaf {
                    entries,
                    get_work: 0.003,
                }),
                16 << 20,
                home,
            )
        })
        .collect();
    for _ in 0..cfg.clients {
        rt.add_client(Box::new(CacheClient {
            leaves: leaves.clone(),
            zipf: Zipf::new(cfg.leaves, cfg.zipf),
            keys_per_leaf: cfg.keys_per_leaf,
            think: SimDuration::from_millis(40),
        }));
    }
    app.run_until(SimTime::ZERO + cfg.run_for);
    let rt = app.runtime();
    let hot = leaves[0]; // Zipf rank 0 is the hottest leaf.
    let hot_server = rt.actor_server(hot);
    let report = rt.report();
    let buckets = report.latency_series.buckets();
    let mean_over = |lo: f64, hi: f64| {
        let vals: Vec<f64> = buckets
            .iter()
            .filter(|&&(t, _)| t.as_secs_f64() >= lo && t.as_secs_f64() < hi)
            .map(|&(_, v)| v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    ZexpanderReport {
        hot_leaf_moved: hot_server != home,
        hot_leaf_neighbors: rt.actor_count_on(hot_server) - 1,
        before_after_ms: (
            mean_over(0.0, period.as_secs_f64()),
            mean_over(cfg.run_for.as_secs_f64() * 0.7, cfg.run_for.as_secs_f64()),
        ),
        migrations: report.migrations.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_leaf_gets_a_dedicated_server() {
        let report = run(&ZexpanderConfig::default());
        assert!(report.migrations >= 1);
        assert!(report.hot_leaf_moved, "hot leaf reserved onto idle server");
        assert!(
            report.hot_leaf_neighbors <= 1,
            "dedicated-ish placement, {} neighbors",
            report.hot_leaf_neighbors
        );
    }

    #[test]
    fn latency_improves_after_reservation() {
        let report = run(&ZexpanderConfig::default());
        let (before, after) = report.before_after_ms;
        assert!(
            after < before,
            "latency should drop after reserve: {before} -> {after}"
        );
    }
}
