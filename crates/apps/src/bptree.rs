//! A distributed B+ tree (Table 1).
//!
//! Inner nodes and leaf nodes are actors; a lookup descends root -> inner ->
//! leaf. The Table-1 rules keep the hot upper levels of the tree together
//! (lookups always traverse them) while spreading the leaf nodes — which
//! hold the data and absorb the per-key work — across the cluster:
//!
//! 1. colocate parent-child inner nodes,
//! 2. put leaf nodes on separate servers.

use plasma::prelude::*;
use plasma_sim::SimTime;

/// Schema for the B+ tree policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Inner").prop("children").func("lookup");
    schema.actor_type("Leaf").func("get");
    schema
}

/// The Table-1 B+ tree rules.
pub fn policy() -> &'static str {
    "Inner(c) in ref(Inner(p).children) => colocate(c, p);\n\
     true => separate(Leaf(a), Leaf(b));"
}

/// An inner node routing lookups by key.
struct Inner {
    /// Child nodes in key order (inner nodes or leaves).
    children: Vec<ActorId>,
    /// Keyspace width this node covers.
    span: u64,
}

/// Lookup payload: the key.
struct Key(u64);

impl ActorLogic for Inner {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.0003);
        let Some(key) = msg.take_payload::<Key>() else {
            return;
        };
        let per_child = (self.span / self.children.len() as u64).max(1);
        let idx = ((key.0 / per_child) as usize).min(self.children.len() - 1);
        let child = self.children[idx];
        let next_fname = "lookup"; // Inner children re-route; leaves answer any fname.
        ctx.send_with(child, next_fname, 64, Box::new(Key(key.0 % per_child)));
    }
}

/// A leaf node holding real key-value data.
struct Leaf {
    data: std::collections::BTreeMap<u64, u64>,
}

impl ActorLogic for Leaf {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.002);
        let value = msg
            .take_payload::<Key>()
            .and_then(|k| self.data.get(&k.0).copied())
            .unwrap_or(0);
        ctx.reply_with(128, Box::new(value));
    }
}

/// B+ tree configuration.
#[derive(Clone, Debug)]
pub struct BptreeConfig {
    /// Fanout of the root (number of mid-level inner nodes).
    pub fanout: usize,
    /// Leaves per mid-level inner node.
    pub leaves_per_inner: usize,
    /// Keys per leaf.
    pub keys_per_leaf: u64,
    /// Servers.
    pub servers: usize,
    /// Clients issuing lookups.
    pub clients: usize,
    /// Run length.
    pub run_for: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BptreeConfig {
    fn default() -> Self {
        BptreeConfig {
            fanout: 4,
            leaves_per_inner: 4,
            keys_per_leaf: 64,
            servers: 4,
            clients: 12,
            run_for: SimDuration::from_secs(160),
            seed: 37,
        }
    }
}

/// The built tree's actor ids, for assertions and lookups.
#[derive(Debug)]
pub struct TreeIds {
    /// The root inner node.
    pub root: ActorId,
    /// Mid-level inner nodes.
    pub inners: Vec<ActorId>,
    /// Leaf nodes.
    pub leaves: Vec<ActorId>,
    /// Total keyspace width.
    pub span: u64,
}

/// Builds the tree on the first server of `rt` and wires references.
pub fn build_tree(rt: &mut Runtime, cfg: &BptreeConfig, home: ServerId) -> TreeIds {
    let leaves_total = cfg.fanout * cfg.leaves_per_inner;
    let span = leaves_total as u64 * cfg.keys_per_leaf;
    let mut leaves = Vec::new();
    let mut inners = Vec::new();
    let mut key = 0u64;
    for _ in 0..cfg.fanout {
        let mut children = Vec::new();
        for _ in 0..cfg.leaves_per_inner {
            let data: std::collections::BTreeMap<u64, u64> =
                (0..cfg.keys_per_leaf).map(|k| (k, key + k)).collect();
            key += cfg.keys_per_leaf;
            let leaf = rt.spawn_actor("Leaf", Box::new(Leaf { data }), 4 << 20, home);
            children.push(leaf);
            leaves.push(leaf);
        }
        let inner = rt.spawn_actor(
            "Inner",
            Box::new(Inner {
                children: children.clone(),
                span: cfg.keys_per_leaf * cfg.leaves_per_inner as u64,
            }),
            256 << 10,
            home,
        );
        for c in children {
            rt.actor_add_ref(inner, "children", c);
        }
        inners.push(inner);
    }
    let root = rt.spawn_actor(
        "Inner",
        Box::new(Inner {
            children: inners.clone(),
            span,
        }),
        256 << 10,
        home,
    );
    for &i in &inners {
        rt.actor_add_ref(root, "children", i);
    }
    TreeIds {
        root,
        inners,
        leaves,
        span,
    }
}

/// A client looking up uniformly random keys.
struct LookupClient {
    root: ActorId,
    span: u64,
    think: SimDuration,
}

impl LookupClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let key = ctx.rng().below(self.span);
        ctx.request_with(self.root, "lookup", 64, Box::new(Key(key)));
    }
}

impl ClientLogic for LookupClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(self.think, 0);
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

/// Results of one B+ tree run.
#[derive(Debug)]
pub struct BptreeReport {
    /// Distinct servers hosting leaves at the end.
    pub leaf_servers: usize,
    /// Whether all inner nodes ended on the root's server.
    pub inners_with_root: bool,
    /// Mean lookup latency (ms).
    pub mean_ms: f64,
    /// Lookups completed.
    pub lookups: u64,
}

/// Runs the B+ tree under the Table-1 policy.
pub fn run(cfg: &BptreeConfig) -> BptreeReport {
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: cfg.seed,
            elasticity_period: SimDuration::from_secs(30),
            min_residency: SimDuration::from_secs(30),
            profile_window: SimDuration::from_secs(5),
            ..RuntimeConfig::default()
        })
        .policy(policy(), &schema())
        .build()
        .expect("bptree policy compiles");
    let rt = app.runtime_mut();
    let servers: Vec<ServerId> = (0..cfg.servers)
        .map(|_| rt.add_server(InstanceType::m1_small()))
        .collect();
    let tree = build_tree(rt, cfg, servers[0]);
    for _ in 0..cfg.clients {
        rt.add_client(Box::new(LookupClient {
            root: tree.root,
            span: tree.span,
            think: SimDuration::from_millis(40),
        }));
    }
    app.run_until(SimTime::ZERO + cfg.run_for);
    let rt = app.runtime();
    let root_home = rt.actor_server(tree.root);
    let inners_with_root = tree.inners.iter().all(|&i| rt.actor_server(i) == root_home);
    let leaf_servers = tree
        .leaves
        .iter()
        .map(|&l| rt.actor_server(l))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    BptreeReport {
        leaf_servers,
        inners_with_root,
        mean_ms: rt.report().mean_latency_ms(),
        lookups: rt.report().replies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_return_real_values() {
        // Without elasticity: verify the data plane itself.
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 1,
            ..RuntimeConfig::default()
        });
        let s = rt.add_server(InstanceType::m1_medium());
        let cfg = BptreeConfig::default();
        let tree = build_tree(&mut rt, &cfg, s);
        rt.add_client(Box::new(LookupClient {
            root: tree.root,
            span: tree.span,
            think: SimDuration::from_millis(10),
        }));
        rt.run_until(SimTime::from_secs(5));
        assert!(rt.report().replies > 50);
        assert_eq!(rt.report().dropped_messages, 0);
    }

    #[test]
    fn policy_spreads_leaves_and_keeps_inners_together() {
        let report = run(&BptreeConfig::default());
        assert!(report.inners_with_root, "inner nodes colocated with root");
        assert!(
            report.leaf_servers >= 3,
            "leaves spread over servers: {}",
            report.leaf_servers
        );
        assert!(report.lookups > 100);
    }
}
