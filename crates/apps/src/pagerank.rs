//! Distributed actor-based PageRank (§2.1, §5.4, Figs. 6-8).
//!
//! One `Worker` actor owns each graph partition; a `Master` actor drives
//! synchronous iterations. Every iteration each worker (a) burns CPU
//! proportional to the edges of its partition, (b) ships rank updates to
//! every other worker (bytes from the partition cut matrix), and
//! (c) reports to the master once it has computed *and* received all
//! peers' updates. The master performs the *real* numeric PageRank step
//! over the full graph, so convergence is genuine, while the CPU/network
//! costs of the distributed execution are modeled per partition.
//!
//! Because the synthetic graph is power-law, vertex-balanced partitions
//! carry unequal edge counts: the slowest worker gates every iteration,
//! which is precisely the imbalance PLASMA's one-line `balance` rule
//! repairs (Fig. 7) and Orleans' count-balancing cannot see (Fig. 6a).
//!
//! The Mizan baseline (Fig. 7a) migrates *vertices* between workers after
//! each iteration: it can shave the gap only a few percent per superstep
//! and pays a migration barrier, reproducing the paper's ~3% ceiling.

use plasma::prelude::*;
use plasma_graph::gen::preferential_attachment;

use crate::common::{ElasticityEval, EvalScale};
use plasma_graph::partition::{partition_balanced, Partitioning};
use plasma_graph::Graph;
use plasma_sim::SimTime;

/// The schema for the PageRank policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema
        .actor_type("Worker")
        .func("load")
        .func("iterate")
        .func("updates");
    schema.actor_type("Master").func("worker_done");
    schema
}

/// The paper's one-rule PageRank policy (§3.3).
pub fn policy() -> &'static str {
    "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);"
}

/// Elasticity management under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// PLASMA with the `balance` rule.
    Plasma,
    /// Orleans-style actor-count balancing.
    Orleans,
    /// No elasticity.
    None,
    /// Mizan-style vertex migration between workers.
    Mizan,
}

/// PageRank experiment configuration.
#[derive(Clone, Debug)]
pub struct PageRankConfig {
    /// Vertices in the synthetic LiveJournal stand-in.
    pub vertices: u32,
    /// Preferential-attachment out-degree.
    pub attach: u32,
    /// Number of partitions (= Worker actors); 32 in the paper.
    pub partitions: u32,
    /// Number of servers to start with.
    pub servers: usize,
    /// Server flavor (m5.large in §5.4).
    pub instance: InstanceType,
    /// Iterations to run (19 in Fig. 7a).
    pub max_iters: u32,
    /// Elasticity mode.
    pub mode: Mode,
    /// Elasticity period (iteration-scale for this workload).
    pub period: SimDuration,
    /// CPU work units per graph edge per iteration.
    pub work_per_edge: f64,
    /// Lognormal sigma of the per-partition compute-cost factor.
    ///
    /// Edge counts alone understate real per-partition cost variance
    /// (convergence activity, cache behavior); the paper observes CPU
    /// usage "diverging greatly" despite METIS-even partitions (§5.4).
    /// A factor of `exp(N(0, sigma))` per partition reproduces that.
    pub work_spread_sigma: f64,
    /// Allow the EMR to grow the cluster (Fig. 8) up to `max_servers`.
    pub auto_scale: bool,
    /// Cluster growth ceiling.
    pub max_servers: usize,
    /// RNG seed (placement and graph).
    pub seed: u64,
    /// Record per-iteration straggler identity (debugging/analysis).
    pub debug_trace: bool,
    /// Override the placement-stability residency (None = elasticity
    /// period, the paper's default; used by the residency ablation).
    pub min_residency: Option<SimDuration>,
    /// Synchronization overhead: the master's per-iteration aggregation
    /// work, as a fraction of the cluster-wide balanced per-server compute
    /// time. Models the global rank application + barrier phase that keeps
    /// equilibrium CPU inside the 60-80% band (Figs. 7b/8b).
    pub sync_frac: f64,
    /// Execution backend carrying deliveries and service time.
    pub backend: BackendKind,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            vertices: 30_000,
            attach: 8,
            partitions: 32,
            servers: 8,
            instance: InstanceType::m5_large(),
            max_iters: 19,
            mode: Mode::Plasma,
            period: SimDuration::from_secs(2),
            work_per_edge: 1.0e-4,
            work_spread_sigma: 0.8,
            auto_scale: false,
            max_servers: 16,
            seed: 1,
            debug_trace: false,
            min_residency: None,
            sync_frac: 0.12,
            backend: BackendKind::Sim,
        }
    }
}

impl PageRankConfig {
    /// The evaluation-harness preset at the given scale.
    pub fn preset(scale: EvalScale) -> Self {
        match scale {
            EvalScale::Full => PageRankConfig::default(),
            EvalScale::Smoke => PageRankConfig {
                vertices: 6_000,
                attach: 6,
                partitions: 16,
                servers: 4,
                max_iters: 12,
                ..PageRankConfig::default()
            },
            EvalScale::Xl => PageRankConfig {
                vertices: 200_000,
                partitions: 128,
                servers: 16,
                max_servers: 64,
                ..PageRankConfig::default()
            },
        }
    }
}

/// Results of one PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankReport {
    /// Wall-clock time of each iteration (seconds).
    pub iteration_times: Vec<f64>,
    /// Sum of all iteration times: the converged computation time (Fig. 6).
    pub converged_time: f64,
    /// Final L1 delta between the last two rank vectors.
    pub final_delta: f64,
    /// Number of actor migrations performed.
    pub migrations: usize,
    /// Per-server CPU utilization series (Figs. 7b, 8b).
    pub server_cpu: std::collections::BTreeMap<ServerId, Vec<(f64, f64)>>,
    /// Per-server worker-count series (Figs. 7c, 8c).
    pub server_actors: std::collections::BTreeMap<ServerId, Vec<(f64, f64)>>,
    /// Running servers over time (Fig. 8).
    pub server_count: Vec<(f64, f64)>,
    /// Final number of running servers.
    pub final_servers: usize,
    /// Completed migrations as `(time_s, actor, src, dst)`.
    pub migration_events: Vec<(f64, u64, u32, u32)>,
    /// `(worker_index, seconds_into_iteration)` of each iteration's last
    /// finisher, when `debug_trace` is set.
    pub straggler_trace: Vec<(u64, f64)>,
    /// Cumulative EMR migration admissions and rejections.
    pub emr_admitted: u64,
    /// Rejected actions (admission control, residency, pinning).
    pub emr_rejected: u64,
    /// Scenario-independent elasticity stats.
    pub eval: ElasticityEval,
}

/// Iteration-tagged control payload.
struct Iter(u32);
/// Mizan work adjustment payload.
struct SetWork(f64);

struct Worker {
    master: ActorId,
    work: f64,
    /// `(peer, bytes per iteration)` update channels to every other worker.
    peer_traffic: Vec<(ActorId, u64)>,
    /// Updates received per iteration number.
    pending_updates: std::collections::BTreeMap<u32, usize>,
    /// Iterations computed locally.
    computed: std::collections::BTreeMap<u32, bool>,
    load_work: f64,
}

impl Worker {
    fn maybe_report(&mut self, ctx: &mut ActorCtx<'_>, iter: u32) {
        let have = self.pending_updates.get(&iter).copied().unwrap_or(0);
        let done = self.computed.get(&iter).copied().unwrap_or(false);
        if done && have == self.peer_traffic.len() {
            self.pending_updates.remove(&iter);
            self.computed.remove(&iter);
            ctx.send_detached_with(self.master, "worker_done", 16, Box::new(Iter(iter)));
        }
    }
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("load") {
            ctx.work(self.load_work);
            ctx.send_detached_with(self.master, "worker_done", 16, Box::new(Iter(u32::MAX)));
        } else if msg.fname == ctx.fn_id("iterate") {
            let iter = msg.payload_ref::<Iter>().expect("iterate payload").0;
            ctx.work(self.work);
            for &(peer, bytes) in &self.peer_traffic {
                ctx.send_detached_with(peer, "updates", bytes.max(64), Box::new(Iter(iter)));
            }
            self.computed.insert(iter, true);
            self.maybe_report(ctx, iter);
        } else if msg.fname == ctx.fn_id("updates") {
            let iter = msg.payload_ref::<Iter>().expect("updates payload").0;
            // A tiny deserialization cost per update batch.
            ctx.work(1e-5);
            *self.pending_updates.entry(iter).or_insert(0) += 1;
            self.maybe_report(ctx, iter);
        } else if msg.fname == ctx.fn_id("set_work") {
            let w = msg.payload_ref::<SetWork>().expect("set_work payload").0;
            self.work = w;
        }
    }
}

struct Master {
    workers: Vec<ActorId>,
    sync_work: f64,
    graph: std::sync::Arc<Graph>,
    ranks: Vec<f64>,
    next_ranks: Vec<f64>,
    iter: u32,
    max_iters: u32,
    done_count: usize,
    iter_started: SimTime,
    final_delta: f64,
    mizan: Option<MizanState>,
    debug_trace: bool,
}

/// State of the Mizan vertex-migration baseline.
struct MizanState {
    /// Current work of each worker (mirrors the workers' own values).
    works: Vec<f64>,
    /// Fraction of the max-min gap migrated per superstep.
    step: f64,
    /// Barrier overhead per migration round, as CPU work at the master
    /// (models Mizan's migration barrier).
    barrier_work: f64,
}

impl Master {
    fn broadcast_iterate(&mut self, ctx: &mut ActorCtx<'_>) {
        self.done_count = 0;
        self.iter_started = ctx.now();
        let iter = self.iter;
        // Shuffle the fan-out order: on a real network, per-message jitter
        // randomizes arrival (and thus service) order every iteration; a
        // fixed order would freeze one unlucky run-queue packing forever.
        let mut order = self.workers.clone();
        ctx.rng().shuffle(&mut order);
        for w in order {
            ctx.send_detached_with(w, "iterate", 32, Box::new(Iter(iter)));
        }
    }
}

impl ActorLogic for Master {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("start") {
            // Phase 1: data loading.
            self.done_count = 0;
            for &w in &self.workers.clone() {
                ctx.send_detached(w, "load", 64);
            }
            return;
        }
        if msg.fname != ctx.fn_id("worker_done") {
            return;
        }
        let iter = msg.payload_ref::<Iter>().expect("done payload").0;
        if iter == u32::MAX {
            // Loading phase.
            self.done_count += 1;
            if self.done_count == self.workers.len() {
                ctx.record("pagerank.load_done", ctx.now().as_secs_f64());
                self.broadcast_iterate(ctx);
            }
            return;
        }
        if iter != self.iter {
            return;
        }
        self.done_count += 1;
        if self.done_count < self.workers.len() {
            return;
        }
        // Iteration barrier reached: apply the updates (the aggregation
        // phase costs real CPU at the master) and record timing.
        ctx.work(self.sync_work);
        let elapsed = ctx.now().saturating_since(self.iter_started).as_secs_f64();
        ctx.record("pagerank.iter_time", elapsed);
        if self.debug_trace {
            if let Some(last) = msg.from_actor {
                ctx.record("pagerank.straggler", last.0 as f64);
                ctx.record("pagerank.straggler_t", elapsed);
            }
        }
        plasma_graph::pagerank::step(&self.graph, &self.ranks, &mut self.next_ranks);
        self.final_delta = plasma_graph::pagerank::l1_delta(&self.ranks, &self.next_ranks);
        std::mem::swap(&mut self.ranks, &mut self.next_ranks);
        // Mizan: migrate vertices (work units) from the slowest to the
        // fastest worker, paying the barrier.
        if let Some(mizan) = &mut self.mizan {
            let (mut hi, mut lo) = (0usize, 0usize);
            for (i, &w) in mizan.works.iter().enumerate() {
                if w > mizan.works[hi] {
                    hi = i;
                }
                if w < mizan.works[lo] {
                    lo = i;
                }
            }
            let gap = mizan.works[hi] - mizan.works[lo];
            if gap > 0.0 {
                let delta = gap * mizan.step;
                mizan.works[hi] -= delta;
                mizan.works[lo] += delta;
                ctx.work(mizan.barrier_work);
                let (hi_id, lo_id) = (self.workers[hi], self.workers[lo]);
                let (hi_w, lo_w) = (mizan.works[hi], mizan.works[lo]);
                ctx.send_detached_with(hi_id, "set_work", 1 << 16, Box::new(SetWork(hi_w)));
                ctx.send_detached_with(lo_id, "set_work", 1 << 16, Box::new(SetWork(lo_w)));
            }
        }
        self.iter += 1;
        if self.iter >= self.max_iters {
            ctx.record_scalar("pagerank.final_delta", self.final_delta);
            ctx.stop_simulation();
        } else {
            self.broadcast_iterate(ctx);
        }
    }
}

/// Builds the graph, partitions it, and runs the experiment.
pub fn run(cfg: &PageRankConfig) -> PageRankReport {
    let mut rng = DetRng::new(cfg.seed);
    let graph = preferential_attachment(cfg.vertices, cfg.attach, &mut rng);
    let parts = partition_balanced(&graph, cfg.partitions, 1.03, &mut rng);
    run_on(cfg, graph, parts, &mut rng)
}

/// Runs the experiment on a pre-built graph and partitioning.
pub fn run_on(
    cfg: &PageRankConfig,
    graph: Graph,
    parts: Partitioning,
    rng: &mut DetRng,
) -> PageRankReport {
    let runtime_cfg = RuntimeConfig {
        seed: cfg.seed,
        elasticity_period: cfg.period,
        min_residency: cfg.min_residency.unwrap_or(cfg.period),
        // Profile over whole elasticity periods: iteration barriers make
        // sub-iteration windows alias the compute/wait phases (the paper's
        // LEMs likewise report per elasticity period).
        profile_window: cfg.period,
        limits: ClusterLimits {
            max_servers: cfg.max_servers,
            min_servers: 1,
        },
        backend: cfg.backend,
        ..RuntimeConfig::default()
    };
    let emr_cfg = EmrConfig {
        auto_scale: cfg.auto_scale,
        scale_instance: cfg.instance.clone(),
        max_balance_moves: 6,
        ..EmrConfig::default()
    };
    let mut app = match cfg.mode {
        Mode::Plasma => Plasma::builder()
            .runtime_config(runtime_cfg)
            .emr_config(emr_cfg)
            .policy(policy(), &schema())
            .build()
            .expect("pagerank policy compiles"),
        Mode::Orleans => Plasma::builder()
            .runtime_config(runtime_cfg)
            .controller(Box::new(OrleansBalance::new()))
            .build()
            .expect("builds"),
        Mode::None | Mode::Mizan => Plasma::builder()
            .runtime_config(runtime_cfg)
            .build()
            .expect("builds"),
    };
    let rt = app.runtime_mut();
    let servers: Vec<ServerId> = (0..cfg.servers)
        .map(|_| rt.add_server(cfg.instance.clone()))
        .collect();

    // Count-balanced random placement of workers (the paper randomly
    // assigns 32 actors over 8 VMs, 4 each).
    let k = cfg.partitions as usize;
    let mut slots: Vec<ServerId> = (0..k).map(|i| servers[i % servers.len()]).collect();
    rng.shuffle(&mut slots);

    // Actor ids are assigned sequentially: master first, then workers.
    let master_id = ActorId(0);
    let worker_ids: Vec<ActorId> = (1..=k as u64).map(ActorId).collect();
    let part_edges = parts.part_edges(&graph);
    // Per-partition compute cost: edges x base cost x a lognormal factor
    // (see `PageRankConfig::work_spread_sigma`). The factor is clamped so
    // no single partition becomes the whole critical path - the imbalance
    // the paper measures is *server-level* aggregation of partitions.
    let works: Vec<f64> = part_edges
        .iter()
        .map(|&e| {
            let factor = rng.log_normal(0.0, cfg.work_spread_sigma).clamp(0.3, 1.9);
            e as f64 * cfg.work_per_edge * factor
        })
        .collect();
    let cut = parts.cut_matrix(&graph);
    let n = graph.vertex_count() as usize;
    let total_work: f64 = works.iter().sum();
    // The aggregation cost scales with the paper's deployment shape (4
    // workers per server), not with however many servers the run *starts*
    // with - a dynamic run starting from one server still has the same
    // global rank-apply work.
    let reference_servers = (cfg.partitions as f64 / 4.0).max(cfg.servers as f64);
    let sync_work = total_work / (reference_servers * cfg.instance.vcpus as f64) * cfg.sync_frac;
    let master = rt.spawn_actor(
        "Master",
        Box::new(Master {
            workers: worker_ids.clone(),
            sync_work,
            graph: std::sync::Arc::new(graph),
            ranks: vec![1.0 / n as f64; n],
            next_ranks: vec![0.0; n],
            iter: 0,
            max_iters: cfg.max_iters,
            done_count: 0,
            iter_started: SimTime::ZERO,
            final_delta: f64::INFINITY,
            debug_trace: cfg.debug_trace,
            mizan: match cfg.mode {
                Mode::Mizan => Some(MizanState {
                    works: works.clone(),
                    // Calibrated to the paper's observation that Mizan's
                    // vertex migration only shaves a few percent: small
                    // per-superstep transfers plus a migration barrier.
                    step: 0.02,
                    barrier_work: 0.02,
                }),
                _ => None,
            },
        }),
        1 << 20,
        servers[0],
    );
    assert_eq!(master, master_id);
    for (i, &sid) in slots.iter().enumerate() {
        let work = works[i];
        let peer_traffic: Vec<(ActorId, u64)> = (0..k)
            .filter(|&j| j != i)
            .map(|j| {
                let bytes = cut[i][j] * plasma_graph::pagerank::BYTES_PER_CUT_EDGE;
                (worker_ids[j], bytes)
            })
            .collect();
        let state_size = 4 + 12 * (part_edges[i] / cfg.attach as u64).max(1);
        let id = rt.spawn_actor(
            "Worker",
            Box::new(Worker {
                master: master_id,
                work,
                peer_traffic,
                pending_updates: Default::default(),
                computed: Default::default(),
                load_work: work * 2.0,
            }),
            state_size,
            sid,
        );
        assert_eq!(id, worker_ids[i]);
    }
    rt.inject(master, "start", 16, None);
    app.run_until(SimTime::from_secs(3_600));

    let report = app.report();
    let iteration_times: Vec<f64> = report
        .series("pagerank.iter_time")
        .map(|s| s.points().iter().map(|&(_, v)| v).collect())
        .unwrap_or_default();
    let to_pairs = |ts: &plasma_sim::metrics::TimeSeries| {
        ts.points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect::<Vec<_>>()
    };
    PageRankReport {
        converged_time: iteration_times.iter().sum(),
        final_delta: report.scalar("pagerank.final_delta").unwrap_or(f64::NAN),
        migrations: report.migrations.len(),
        server_cpu: report
            .server_cpu
            .iter()
            .map(|(&s, ts)| (s, to_pairs(ts)))
            .collect(),
        server_actors: report
            .server_actors
            .iter()
            .map(|(&s, ts)| (s, to_pairs(ts)))
            .collect(),
        server_count: app
            .runtime()
            .cluster()
            .server_count_series()
            .points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect(),
        final_servers: app.runtime().cluster().running_count(),
        emr_admitted: report
            .series("emr.admitted")
            .and_then(|s| s.last())
            .unwrap_or(0.0) as u64,
        emr_rejected: report
            .series("emr.rejected")
            .and_then(|s| s.last())
            .unwrap_or(0.0) as u64,
        migration_events: report
            .migrations
            .iter()
            .map(|m| (m.at.as_secs_f64(), m.actor.0, m.src.0, m.dst.0))
            .collect(),
        straggler_trace: report
            .series("pagerank.straggler")
            .map(|s| {
                let ts = report
                    .series("pagerank.straggler_t")
                    .expect("paired series");
                s.points()
                    .iter()
                    .zip(ts.points())
                    .map(|(&(_, w), &(_, t))| (w as u64, t))
                    .collect()
            })
            .unwrap_or_default(),
        iteration_times,
        eval: ElasticityEval::collect(app.runtime()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mode: Mode) -> PageRankConfig {
        PageRankConfig {
            vertices: 12_000,
            attach: 6,
            max_iters: 30,
            mode,
            seed: 13,
            ..PageRankConfig::default()
        }
    }

    #[test]
    fn pagerank_runs_to_completion_and_converges() {
        let report = run(&small(Mode::None));
        assert_eq!(report.iteration_times.len(), 30);
        assert!(report.final_delta < 0.05, "delta {}", report.final_delta);
        assert!(report.converged_time > 0.0);
    }

    #[test]
    fn plasma_beats_orleans_static_allocation() {
        let plasma = run(&small(Mode::Plasma));
        let orleans = run(&small(Mode::Orleans));
        assert!(plasma.migrations > 0, "balance rule migrated workers");
        assert_eq!(orleans.migrations, 0, "counts already equal");
        let tail = |r: &PageRankReport| {
            let n = r.iteration_times.len();
            r.iteration_times[n - 8..].iter().sum::<f64>() / 8.0
        };
        let speedup = 1.0 - tail(&plasma) / tail(&orleans);
        assert!(
            speedup > 0.08,
            "expected ~24% faster convergence, got {:.0}% ({:.2}s vs {:.2}s)",
            speedup * 100.0,
            plasma.converged_time,
            orleans.converged_time
        );
    }

    #[test]
    fn mizan_gains_little() {
        let none = run(&small(Mode::None));
        let mizan = run(&small(Mode::Mizan));
        let tail = |r: &PageRankReport| {
            let n = r.iteration_times.len();
            r.iteration_times[n - 4..].iter().sum::<f64>() / 4.0
        };
        let gain = 1.0 - tail(&mizan) / tail(&none);
        assert!(
            (-0.05..0.12).contains(&gain),
            "Mizan should gain only a few percent, got {:.0}%",
            gain * 100.0
        );
    }

    #[test]
    fn dynamic_allocation_scales_out_and_stabilizes() {
        let mut cfg = small(Mode::Plasma);
        cfg.servers = 1;
        cfg.auto_scale = true;
        cfg.max_servers = 8;
        cfg.max_iters = 60;
        // Longer iterations so instance boot delays (40s) fit in the run.
        cfg.work_per_edge = 5.0e-4;
        let report = run(&cfg);
        assert!(
            report.final_servers > 2,
            "scaled beyond initial server: {}",
            report.final_servers
        );
        assert!(
            report.final_servers <= 8,
            "stayed within ceiling: {}",
            report.final_servers
        );
        // Iterations speed up as capacity arrives.
        let early: f64 = report.iteration_times[..5].iter().sum::<f64>() / 5.0;
        let n = report.iteration_times.len();
        let late: f64 = report.iteration_times[n - 5..].iter().sum::<f64>() / 5.0;
        assert!(late < early * 0.7, "late {late} vs early {early}");
    }
}
