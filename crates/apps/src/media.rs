//! The Media Service microservice application (§3.3, §5.6, Fig. 10).
//!
//! Eight interdependent actor types serve two user journeys:
//!
//! - **watch**: client -> `FrontEnd` -> `VideoStream` (CPU-heavy stream
//!   encode, plus a `track` update to the user's `UserInfo`) -> the stream
//!   flows back through the `FrontEnd` (making front-ends
//!   network-intensive) -> client.
//! - **review**: client -> `FrontEnd` -> `ReviewEditor` (updates the
//!   user's `UserReview`) -> `ReviewChecker` (CPU-heavy moderation) ->
//!   client. `MovieReview` actors are large in-memory stores browsed
//!   occasionally and must never migrate.
//!
//! A `Gateway` actor creates the per-user actors as clients join. Clients
//! join over the first ten minutes (normal distribution), stay a few
//! minutes, and leave (§5.6); the EMR grows the cluster from 4 instances
//! while the wave builds and reclaims servers as it recedes. The
//! experiment sweeps the elasticity period (60/120/180 s): shorter periods
//! track the wave more closely (Fig. 10).

use plasma::prelude::*;
use plasma_sim::SimTime;

use crate::common::{ElasticityEval, EvalScale};

/// Schema for the Media Service policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Gateway").func("join").func("leave");
    schema.actor_type("FrontEnd").func("watch").func("review");
    schema.actor_type("VideoStream").func("stream");
    schema.actor_type("UserInfo").func("track");
    schema.actor_type("ReviewEditor").func("edit");
    schema.actor_type("UserReview").func("update");
    schema.actor_type("ReviewChecker").func("check");
    schema.actor_type("MovieReview").func("browse");
    schema
}

/// The six §3.3 Media Service rules, verbatim.
pub fn policy() -> &'static str {
    "server.net.perc > 80 or server.net.perc < 60 => balance({FrontEnd}, net);\n\
     server.cpu.perc > 50 => reserve(VideoStream(v), cpu);\n\
     VideoStream(v).call(UserInfo(u).track).count > 0 => pin(v); colocate(v, u);\n\
     ReviewEditor(r).call(UserReview(u).update).count > 0 => pin(r); colocate(r, u);\n\
     true => pin(MovieReview(m));\n\
     server.cpu.perc > 90 or server.cpu.perc < 70 => balance({ReviewChecker}, cpu);"
}

/// Media Service experiment configuration (§5.6 defaults).
#[derive(Clone, Debug)]
pub struct MediaConfig {
    /// Total clients (128 in the paper).
    pub clients: usize,
    /// Initial servers (4 in the paper).
    pub initial_servers: usize,
    /// Cluster ceiling (65 in the paper).
    pub max_servers: usize,
    /// Elasticity period (60/120/180 s in Fig. 10).
    pub period: SimDuration,
    /// Mean join time.
    pub join_mean: SimDuration,
    /// Join/leave standard deviation (90 s in the paper).
    pub sigma: SimDuration,
    /// Mean leave time (19 min in the paper).
    pub leave_mean: SimDuration,
    /// Total run length.
    pub run_for: SimDuration,
    /// Execution backend carrying deliveries and service time.
    pub backend: BackendKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MediaConfig {
    fn default() -> Self {
        MediaConfig {
            clients: 128,
            initial_servers: 4,
            max_servers: 65,
            period: SimDuration::from_secs(60),
            join_mean: SimDuration::from_secs(120),
            sigma: SimDuration::from_secs(90),
            leave_mean: SimDuration::from_secs(1_140),
            run_for: SimDuration::from_secs(1_440),
            backend: BackendKind::Sim,
            seed: 31,
        }
    }
}

impl MediaConfig {
    /// The evaluation-harness preset at the given scale.
    pub fn preset(scale: EvalScale) -> Self {
        match scale {
            EvalScale::Full => MediaConfig::default(),
            EvalScale::Smoke => MediaConfig {
                clients: 32,
                max_servers: 20,
                join_mean: SimDuration::from_secs(60),
                sigma: SimDuration::from_secs(30),
                leave_mean: SimDuration::from_secs(300),
                run_for: SimDuration::from_secs(600),
                ..MediaConfig::default()
            },
            EvalScale::Xl => MediaConfig {
                clients: 1024,
                max_servers: 129,
                ..MediaConfig::default()
            },
        }
    }
}

/// Results of one Media Service run.
#[derive(Debug)]
pub struct MediaReport {
    /// Mean latency per 10-second bucket (Fig. 10a).
    pub latency_series: Vec<(f64, f64)>,
    /// Running-server count over time (Fig. 10b).
    pub server_series: Vec<(f64, f64)>,
    /// Mean latency during the full-load plateau.
    pub plateau_ms: f64,
    /// Mean latency over the whole run.
    pub mean_ms: f64,
    /// Peak server count.
    pub peak_servers: usize,
    /// Running servers at the end of the run (reclaim effectiveness).
    pub final_servers: usize,
    /// Migrations performed.
    pub migrations: usize,
    /// Per-type `(name, actors, distinct servers, on busiest server)` at
    /// the end of the run.
    pub type_spread: Vec<(String, usize, usize, usize)>,
    /// EMR admission counters `(admitted, rejected)`.
    pub emr_actions: (u64, u64),
    /// Scenario-independent elasticity stats.
    pub eval: ElasticityEval,
}

/// Ids a joining client receives from the gateway.
struct MediaIds {
    frontend: ActorId,
    user_info: ActorId,
    user_review: ActorId,
    movie_review: ActorId,
    group: usize,
}

/// Leave notification payload.
struct Leaving {
    user_info: ActorId,
    user_review: ActorId,
    group: usize,
}

/// Per-request token identifying the caller's user actors.
struct Token {
    user_info: ActorId,
    user_review: ActorId,
}

/// Shared actors serving two consecutive clients.
struct SharedGroup {
    frontend: ActorId,
    video: ActorId,
    editor: ActorId,
    checker: ActorId,
    movie_review: ActorId,
}

struct Gateway {
    joined: usize,
    group: Option<SharedGroup>,
    groups: Vec<(SharedGroup, u8)>,
}

impl ActorLogic for Gateway {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.001);
        if msg.fname == ctx.fn_id("leave") {
            // Tear down the departing user's actors; shared groups go when
            // their second member leaves.
            if let Some(leaving) = msg.take_payload::<Leaving>() {
                ctx.despawn(leaving.user_info);
                ctx.despawn(leaving.user_review);
                if let Some((group, left)) = self.groups.get_mut(leaving.group) {
                    *left += 1;
                    if *left >= 2 {
                        ctx.despawn(group.frontend);
                        ctx.despawn(group.video);
                        ctx.despawn(group.editor);
                        ctx.despawn(group.checker);
                        ctx.despawn(group.movie_review);
                    }
                }
            }
            ctx.reply(16);
            return;
        }
        // Every other client opens a fresh shared group ("all other actors
        // serve two clients each", §5.6).
        if self.joined.is_multiple_of(2) || self.group.is_none() {
            let video = ctx.spawn(
                "VideoStream",
                Box::new(VideoStream { work: 0.09 }),
                48 << 20,
            );
            let checker = ctx.spawn(
                "ReviewChecker",
                Box::new(ReviewChecker { work: 0.035 }),
                8 << 20,
            );
            let movie_review = ctx.spawn(
                "MovieReview",
                Box::new(MovieReview { work: 0.002 }),
                192 << 20,
            );
            let editor = ctx.spawn("ReviewEditor", Box::new(ReviewEditor { checker }), 4 << 20);
            let frontend = ctx.spawn("FrontEnd", Box::new(FrontEnd { video, editor }), 4 << 20);
            let group = SharedGroup {
                frontend,
                video,
                editor,
                checker,
                movie_review,
            };
            self.groups.push((
                SharedGroup {
                    frontend: group.frontend,
                    video: group.video,
                    editor: group.editor,
                    checker: group.checker,
                    movie_review: group.movie_review,
                },
                0,
            ));
            self.group = Some(group);
        }
        self.joined += 1;
        let group_index = self.groups.len() - 1;
        let group = self.group.as_ref().expect("group exists");
        let user_info = ctx.spawn("UserInfo", Box::new(UserInfo), 2 << 20);
        let user_review = ctx.spawn("UserReview", Box::new(UserReview), 2 << 20);
        ctx.reply_with(
            128,
            Box::new(MediaIds {
                frontend: group.frontend,
                user_info,
                user_review,
                movie_review: group.movie_review,
                group: group_index,
            }),
        );
    }
}

struct FrontEnd {
    video: ActorId,
    editor: ActorId,
}

impl ActorLogic for FrontEnd {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("watch") {
            ctx.work(0.002);
            if let Some(token) = msg.take_payload::<Token>() {
                ctx.send_with(self.video, "stream", 4 << 10, token);
            }
        } else if msg.fname == ctx.fn_id("review") {
            ctx.work(0.001);
            if let Some(token) = msg.take_payload::<Token>() {
                ctx.send_with(self.editor, "edit", 2 << 10, token);
            }
        } else if msg.fname == ctx.fn_id("deliver") {
            // The encoded stream flows back through the front end; this is
            // what makes front ends network-intensive.
            ctx.work(0.001);
            ctx.reply(msg.bytes);
        }
    }
}

struct VideoStream {
    work: f64,
}

impl ActorLogic for VideoStream {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(self.work);
        if let Some(token) = msg.take_payload::<Token>() {
            // Update the viewer's watching history (drives the colocate
            // rule binding v to u).
            ctx.send_detached(token.user_info, "track", 256);
        }
        // Ship the encoded chunk back via the front end.
        if let Some(frontend) = msg.from_actor {
            ctx.send(frontend, "deliver", 400 << 10);
        }
    }
}

struct UserInfo;
impl ActorLogic for UserInfo {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.0004);
    }
}

struct ReviewEditor {
    checker: ActorId,
}

impl ActorLogic for ReviewEditor {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.002);
        if let Some(token) = msg.take_payload::<Token>() {
            ctx.send_detached(token.user_review, "update", 1 << 10);
        }
        ctx.send(self.checker, "check", 2 << 10);
    }
}

struct UserReview;
impl ActorLogic for UserReview {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.0005);
    }
}

struct ReviewChecker {
    work: f64,
}

impl ActorLogic for ReviewChecker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(1 << 10);
    }
}

struct MovieReview {
    work: f64,
}

impl ActorLogic for MovieReview {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(16 << 10);
    }
}

const TOKEN_JOIN: u64 = 1;
const TOKEN_NEXT: u64 = 2;

struct MediaClient {
    gateway: ActorId,
    ids: Option<MediaIds>,
    join_at: SimDuration,
    leave_at: SimDuration,
    think: SimDuration,
    requests: u64,
    left: bool,
}

impl MediaClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let Some(ids) = &self.ids else { return };
        if ctx.now() >= SimTime::ZERO + self.leave_at {
            if !self.left {
                self.left = true;
                ctx.record("media.leave", 1.0);
                ctx.request_with(
                    self.gateway,
                    "leave",
                    64,
                    Box::new(Leaving {
                        user_info: ids.user_info,
                        user_review: ids.user_review,
                        group: ids.group,
                    }),
                );
            }
            return;
        }
        self.requests += 1;
        let token = Box::new(Token {
            user_info: ids.user_info,
            user_review: ids.user_review,
        });
        // Half the requests watch movies, half review them (§5.6), with an
        // occasional direct browse of the memory-heavy MovieReview store.
        if self.requests.is_multiple_of(10) {
            ctx.request(ids.movie_review, "browse", 1 << 10);
        } else if self.requests.is_multiple_of(2) {
            ctx.request_with(ids.frontend, "watch", 8 << 10, token);
        } else {
            ctx.request_with(ids.frontend, "review", 4 << 10, token);
        }
    }
}

impl ClientLogic for MediaClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(self.join_at, TOKEN_JOIN);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        payload: Option<Payload>,
    ) {
        if let Some(ids) = payload.and_then(|p| p.downcast::<MediaIds>().ok()) {
            self.ids = Some(*ids);
            ctx.record("media.join", 1.0);
        }
        if !self.left {
            ctx.set_timer(self.think, TOKEN_NEXT);
        }
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, token: u64) {
        match token {
            TOKEN_JOIN => {
                ctx.request(self.gateway, "join", 256);
            }
            TOKEN_NEXT => self.fire(ctx),
            _ => {}
        }
    }
}

/// Runs the Media Service experiment.
pub fn run(cfg: &MediaConfig) -> MediaReport {
    let runtime_cfg = RuntimeConfig {
        seed: cfg.seed,
        elasticity_period: cfg.period,
        min_residency: cfg.period,
        profile_window: SimDuration::from_secs(10),
        latency_bucket: SimDuration::from_secs(10),
        limits: ClusterLimits {
            max_servers: cfg.max_servers,
            min_servers: cfg.initial_servers,
        },
        backend: cfg.backend,
        ..RuntimeConfig::default()
    };
    let mut app = Plasma::builder()
        .runtime_config(runtime_cfg)
        .emr_config(EmrConfig {
            auto_scale: true,
            scale_instance: InstanceType::m1_small(),
            scale_out_step: 6,
            scale_in_step: 4,
            ..EmrConfig::default()
        })
        .policy(policy(), &schema())
        .build()
        .expect("media policy compiles");
    let rt = app.runtime_mut();
    let first = rt.add_server(InstanceType::m1_small());
    for _ in 1..cfg.initial_servers {
        rt.add_server(InstanceType::m1_small());
    }
    let gateway = rt.spawn_actor(
        "Gateway",
        Box::new(Gateway {
            joined: 0,
            group: None,
            groups: Vec::new(),
        }),
        1 << 20,
        first,
    );
    let mut rng = DetRng::new(cfg.seed ^ 0x5EED);
    for _ in 0..cfg.clients {
        let join_at = rng
            .normal(cfg.join_mean.as_secs_f64(), cfg.sigma.as_secs_f64())
            .max(0.0);
        let leave_at = rng
            .normal(cfg.leave_mean.as_secs_f64(), cfg.sigma.as_secs_f64())
            .max(join_at + 60.0);
        rt.add_client(Box::new(MediaClient {
            gateway,
            ids: None,
            join_at: SimDuration::from_secs_f64(join_at),
            leave_at: SimDuration::from_secs_f64(leave_at),
            think: SimDuration::from_millis(800),
            requests: 0,
            left: false,
        }));
    }
    let end = SimTime::ZERO + cfg.run_for;
    app.run_until(end);
    let report = app.report();
    let latency_series: Vec<(f64, f64)> = report
        .latency_series
        .buckets()
        .into_iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    let server_series: Vec<(f64, f64)> = app
        .runtime()
        .cluster()
        .server_count_series()
        .points()
        .iter()
        .map(|&(t, v)| (t.as_secs_f64(), v))
        .collect();
    // Plateau: everyone joined, nobody left yet (minutes 10-14).
    let plateau: Vec<f64> = latency_series
        .iter()
        .filter(|&&(t, _)| (600.0..840.0).contains(&t))
        .map(|&(_, v)| v)
        .collect();
    // Per-type placement spread.
    let rt = app.runtime();
    let mut by_type: std::collections::BTreeMap<String, Vec<ServerId>> = Default::default();
    for a in rt.all_actors() {
        let name = rt.names().type_name(rt.actor_type(a)).to_string();
        by_type.entry(name).or_default().push(rt.actor_server(a));
    }
    let type_spread: Vec<(String, usize, usize, usize)> = by_type
        .into_iter()
        .map(|(name, servers)| {
            let mut counts: std::collections::BTreeMap<ServerId, usize> = Default::default();
            for s in &servers {
                *counts.entry(*s).or_default() += 1;
            }
            let distinct = counts.len();
            let busiest = counts.values().copied().max().unwrap_or(0);
            (name, servers.len(), distinct, busiest)
        })
        .collect();
    let emr_actions = (
        report
            .series("emr.admitted")
            .and_then(|s| s.last())
            .unwrap_or(0.0) as u64,
        report
            .series("emr.rejected")
            .and_then(|s| s.last())
            .unwrap_or(0.0) as u64,
    );
    MediaReport {
        type_spread,
        emr_actions,
        eval: ElasticityEval::collect(app.runtime()),
        plateau_ms: if plateau.is_empty() {
            0.0
        } else {
            plateau.iter().sum::<f64>() / plateau.len() as f64
        },
        mean_ms: report.mean_latency_ms(),
        peak_servers: server_series
            .iter()
            .map(|&(_, v)| v as usize)
            .max()
            .unwrap_or(0),
        final_servers: app.runtime().cluster().running_count(),
        migrations: report.migrations.len(),
        latency_series,
        server_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(period: u64) -> MediaReport {
        run(&MediaConfig {
            clients: 96,
            max_servers: 48,
            period: SimDuration::from_secs(period),
            ..MediaConfig::default()
        })
    }

    #[test]
    fn service_scales_out_and_back() {
        let r = quick(60);
        assert!(r.peak_servers > 8, "scaled out, peak {}", r.peak_servers);
        assert!(
            r.final_servers < r.peak_servers,
            "reclaimed servers: final {} < peak {}",
            r.final_servers,
            r.peak_servers
        );
        assert!(r.migrations > 0);
    }

    #[test]
    fn shorter_period_reacts_faster_and_lower_latency() {
        let fast = quick(60);
        let slow = quick(180);
        // The period's effect shows while the wave builds (the paper's
        // Fig. 10a gap): compare the ramp window.
        let ramp = |r: &MediaReport| {
            let vals: Vec<f64> = r
                .latency_series
                .iter()
                .filter(|&&(t, _)| (100.0..600.0).contains(&t))
                .map(|&(_, v)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(
            ramp(&fast) < ramp(&slow) * 1.02,
            "60s period should not lose to 180s during the ramp: {} vs {}",
            ramp(&fast),
            ramp(&slow)
        );
        // The short period reaches its peak allocation earlier.
        let peak_time = |r: &MediaReport| {
            let peak = r
                .server_series
                .iter()
                .map(|&(_, v)| v as usize)
                .max()
                .unwrap_or(0);
            r.server_series
                .iter()
                .find(|&&(_, v)| v as usize == peak)
                .map(|&(t, _)| t)
                .unwrap_or(f64::MAX)
        };
        assert!(
            peak_time(&fast) <= peak_time(&slow),
            "fast {} vs slow {}",
            peak_time(&fast),
            peak_time(&slow)
        );
    }

    #[test]
    fn movie_reviews_never_migrate() {
        let r = quick(60);
        // MovieReview is pinned by rule 5; the report cannot tell types, but
        // a pinned actor never appears in migrations - verified indirectly
        // by re-running with access to the runtime.
        let _ = r;
        let mut app = Plasma::builder()
            .policy(policy(), &schema())
            .build()
            .unwrap();
        let rt = app.runtime_mut();
        let s = rt.add_server(InstanceType::m1_small());
        let gw = rt.spawn_actor(
            "Gateway",
            Box::new(Gateway {
                joined: 0,
                group: None,
                groups: Vec::new(),
            }),
            1 << 20,
            s,
        );
        rt.inject(gw, "join", 64, None);
        app.run_until(SimTime::from_secs(120));
        let rt = app.runtime();
        let mr_type = rt.names().lookup_type("MovieReview").unwrap();
        let pinned: Vec<bool> = rt
            .all_actors()
            .into_iter()
            .filter(|&a| rt.actor_type(a) == mr_type)
            .map(|a| rt.is_pinned(a))
            .collect();
        assert!(!pinned.is_empty());
        assert!(pinned.iter().all(|&p| p), "every MovieReview pinned");
    }
}
