//! The Table-1 application inventory: every app's policy, schema, and rule
//! count, checked against the paper's table.

use plasma_epl::{compile, ActorSchema, CompiledPolicy};

/// One row of Table 1.
#[derive(Debug)]
pub struct AppEntry {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Paper section / source reference.
    pub source: &'static str,
    /// The EPL policy, verbatim.
    pub policy: &'static str,
    /// The actor schema it compiles against.
    pub schema: ActorSchema,
    /// Number of rules the paper lists for this application.
    pub paper_rule_count: usize,
}

/// Returns all Table-1 applications with their policies.
pub fn applications() -> Vec<AppEntry> {
    vec![
        AppEntry {
            name: "Metadata Server",
            source: "§3.3, §5.3",
            policy: crate::metadata::policy(),
            schema: crate::metadata::schema(),
            paper_rule_count: 1,
        },
        AppEntry {
            name: "PageRank",
            source: "§2.1, §5.4",
            policy: crate::pagerank::policy(),
            schema: crate::pagerank::schema(),
            paper_rule_count: 1,
        },
        AppEntry {
            name: "E-Store",
            source: "§3.3, §5.5",
            policy: crate::estore::policy(),
            schema: crate::estore::schema(),
            paper_rule_count: 3,
        },
        AppEntry {
            name: "Media Service",
            source: "§3.3, §5.6",
            policy: crate::media::policy(),
            schema: crate::media::schema(),
            paper_rule_count: 6,
        },
        AppEntry {
            name: "Halo Presence Service",
            source: "§3.3, §5.7",
            policy: crate::halo::resource_policy(),
            schema: crate::halo::schema(),
            paper_rule_count: 2,
        },
        AppEntry {
            name: "B+ tree",
            source: "Table 1",
            policy: crate::bptree::policy(),
            schema: crate::bptree::schema(),
            paper_rule_count: 2,
        },
        AppEntry {
            name: "Piccolo",
            source: "Table 1",
            policy: crate::piccolo::policy(),
            schema: crate::piccolo::schema(),
            paper_rule_count: 2,
        },
        AppEntry {
            name: "zExpander",
            source: "Table 1",
            policy: crate::zexpander::policy(),
            schema: crate::zexpander::schema(),
            paper_rule_count: 1,
        },
        AppEntry {
            name: "Cassandra",
            source: "Table 1",
            policy: crate::cassandra::policy(),
            schema: crate::cassandra::schema(),
            paper_rule_count: 1,
        },
    ]
}

/// Compiles one entry's policy (panics on error; used by the Table-1 bench).
pub fn compile_entry(entry: &AppEntry) -> CompiledPolicy {
    compile(entry.policy, &entry.schema)
        .unwrap_or_else(|e| panic!("{} policy failed to compile: {e}", entry.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table1_policy_compiles() {
        for entry in applications() {
            let compiled = compile_entry(&entry);
            assert!(!compiled.rules.is_empty(), "{} has no rules", entry.name);
        }
    }

    #[test]
    fn rule_counts_match_the_paper() {
        for entry in applications() {
            let compiled = compile_entry(&entry);
            assert_eq!(
                compiled.rules.len(),
                entry.paper_rule_count,
                "{}: paper lists {} rules",
                entry.name,
                entry.paper_rule_count
            );
        }
    }

    #[test]
    fn policies_have_no_hard_conflicts() {
        use plasma_epl::error::Severity;
        for entry in applications() {
            let compiled = compile_entry(&entry);
            let hard: Vec<_> = compiled
                .warnings
                .iter()
                .filter(|w| w.severity == Severity::Warning)
                .collect();
            assert!(
                hard.is_empty(),
                "{} has hard conflicts: {hard:?}",
                entry.name
            );
        }
    }
}
