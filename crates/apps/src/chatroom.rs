//! The chat-room microbenchmark (§5.2, Table 3).
//!
//! Users, each represented by an actor, exchange messages within one room:
//! a `say` request costs CPU at the speaking user and fans out to every
//! other user in the room, whose `recv` handlers cost CPU too. All actors
//! sit on a single server and clients saturate it, so the measured makespan
//! is CPU-bound — exactly the regime in which Table 3 quantifies the EPR's
//! profiling tax.

use plasma::prelude::*;
use plasma_sim::SimTime;

use crate::common::{ChaosEval, ClosedLoop, ElasticityEval, EvalScale, Pulse};

/// The EPL-visible schema (no rules are attached in the overhead study;
/// actors must stay stationary as in the paper).
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("ChatUser").func("say").func("recv");
    schema
}

/// Chat-room experiment configuration.
#[derive(Clone, Debug)]
pub struct ChatConfig {
    /// Number of users (8/16/32 in Table 3).
    pub users: usize,
    /// Hosting instance (`m1.small` = `s`, `m1.medium` = `m` in Table 3).
    pub instance: InstanceType,
    /// Messages each user sends before finishing.
    pub messages_per_user: u64,
    /// Whether the profiling runtime (EPR) is enabled.
    pub epr_enabled: bool,
    /// Servers hosting the room (users spread round-robin). The paper's
    /// overhead study uses 1; the chaos variant spreads the room so a
    /// crash orphans only part of it.
    pub servers: usize,
    /// Faults injected during the run (empty = none, byte-identical runs).
    pub faults: FaultPlan,
    /// Detection and recovery policy for the fault plan.
    pub recovery: RecoveryPolicy,
    /// Execution backend carrying deliveries and service time.
    pub backend: BackendKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChatConfig {
    fn default() -> Self {
        ChatConfig {
            users: 8,
            instance: InstanceType::m1_small(),
            messages_per_user: 200,
            epr_enabled: true,
            servers: 1,
            faults: FaultPlan::new(),
            recovery: RecoveryPolicy::default(),
            backend: BackendKind::Sim,
            seed: 1,
        }
    }
}

impl ChatConfig {
    /// The evaluation-harness preset at the given scale.
    pub fn preset(scale: EvalScale) -> Self {
        match scale {
            EvalScale::Full => ChatConfig::default(),
            EvalScale::Smoke => ChatConfig {
                users: 4,
                messages_per_user: 50,
                ..ChatConfig::default()
            },
            EvalScale::Xl => ChatConfig {
                users: 128,
                servers: 8,
                ..ChatConfig::default()
            },
        }
    }

    /// The chaos-variant preset: the room spreads over several servers and
    /// the plan crashes two of them — one rebooting before the heartbeat
    /// sweep notices (in-place recovery), one detected and respawned onto
    /// the survivors — plus a LEM crash and a provisioner stall.
    pub fn chaos_preset(scale: EvalScale) -> Self {
        let faults = FaultPlan::new()
            .crash_lem(SimTime::from_secs(10), ServerId(0))
            .crash_server(
                SimTime::from_secs(20),
                ServerId(1),
                Some(SimDuration::from_secs(5)),
            )
            .stall_provisioner(SimTime::from_secs(35), SimDuration::from_secs(10))
            .crash_server(SimTime::from_secs(50), ServerId(2), None);
        match scale {
            EvalScale::Full => ChatConfig {
                users: 16,
                servers: 4,
                faults,
                seed: 31,
                ..ChatConfig::default()
            },
            EvalScale::Smoke => ChatConfig {
                users: 6,
                servers: 3,
                faults,
                seed: 31,
                ..ChatConfig::default()
            },
            // The chaos plan targets fixed server ids; xl reuses the full
            // topology rather than scaling past the fault plan's reach.
            EvalScale::Xl => ChatConfig {
                users: 16,
                servers: 4,
                faults,
                seed: 31,
                ..ChatConfig::default()
            },
        }
    }
}

/// Results of one chat-room run.
#[derive(Clone, Copy, Debug)]
pub struct ChatReport {
    /// Time until every user finished sending and receiving replies.
    pub makespan: SimDuration,
    /// Mean end-to-end `say` latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Scenario-independent elasticity stats.
    pub eval: ElasticityEval,
}

struct ChatUser {
    peers: Vec<ActorId>,
    say_work: f64,
    recv_work: f64,
}

impl ActorLogic for ChatUser {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("say") {
            ctx.work(self.say_work);
            for &p in &self.peers {
                ctx.send_detached(p, "recv", 48);
            }
            ctx.reply(16);
        } else {
            ctx.work(self.recv_work);
        }
    }
}

/// A chat client that marks its completion time in the report.
struct ChatClient {
    inner: ClosedLoop,
}

impl ClientLogic for ChatClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.inner.on_start(ctx);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        request: u64,
        latency: SimDuration,
        payload: Option<Payload>,
    ) {
        self.inner.on_reply(ctx, request, latency, payload);
        if self.inner.sent == self.inner.max_requests {
            ctx.record("chat.client_done", ctx.now().as_secs_f64());
        }
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, token: u64) {
        self.inner.on_timer(ctx, token);
    }
}

/// Runs the chat room and returns its makespan and mean latency.
pub fn run(cfg: &ChatConfig) -> ChatReport {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: cfg.seed,
        epr_enabled: cfg.epr_enabled,
        backend: cfg.backend,
        ..RuntimeConfig::default()
    });
    rt.install_fault_plan(&cfg.faults, cfg.recovery);
    let servers: Vec<ServerId> = (0..cfg.servers.max(1))
        .map(|_| rt.add_server(cfg.instance.clone()))
        .collect();
    // Actor ids are assigned sequentially from zero, so the full room
    // membership is known before the first spawn.
    let ids: Vec<ActorId> = (0..cfg.users as u64).map(ActorId).collect();
    for i in 0..cfg.users {
        let peers: Vec<ActorId> = ids
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &p)| p)
            .collect();
        let id = rt.spawn_actor(
            "ChatUser",
            Box::new(ChatUser {
                peers: peers.clone(),
                say_work: 0.0015,
                recv_work: 0.0002,
            }),
            16 << 10,
            servers[i % servers.len()],
        );
        assert_eq!(id, ids[i], "deterministic id assignment");
        for p in peers {
            rt.actor_add_ref(id, "room", p);
        }
    }
    for &u in &ids {
        rt.add_client(Box::new(ChatClient {
            inner: ClosedLoop {
                target: u,
                fname: "say",
                bytes: 128,
                think: SimDuration::ZERO,
                max_requests: cfg.messages_per_user,
                sent: 0,
            },
        }));
    }
    rt.run_until(SimTime::from_secs(3_600));
    let makespan = rt
        .report()
        .series("chat.client_done")
        .and_then(|s| s.points().iter().map(|&(t, _)| t).max())
        .map(|t| t.saturating_since(SimTime::ZERO))
        .unwrap_or(SimDuration::MAX);
    ChatReport {
        makespan,
        mean_latency_ms: rt.report().mean_latency_ms(),
        eval: ElasticityEval::collect(&rt),
    }
}

/// Results of one chat-room chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChatChaosReport {
    /// Replies delivered to the open-loop clients.
    pub replies: u64,
    /// Scenario-independent elasticity stats.
    pub eval: ElasticityEval,
    /// Recovery metrics from the fault plan.
    pub chaos: ChaosEval,
}

/// Runs the chat room under the configured fault plan for `run_for`.
///
/// Clients here are open-loop ([`Pulse`]): a crash may swallow replies, and
/// a closed loop would deadlock waiting for them. The room spreads over
/// `cfg.servers`, so crashing one server orphans only its share of users;
/// the heartbeat sweep (or an early reboot) brings them back.
pub fn run_chaos(cfg: &ChatConfig, run_for: SimDuration) -> ChatChaosReport {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: cfg.seed,
        epr_enabled: cfg.epr_enabled,
        backend: cfg.backend,
        ..RuntimeConfig::default()
    });
    rt.install_fault_plan(&cfg.faults, cfg.recovery);
    let servers: Vec<ServerId> = (0..cfg.servers.max(1))
        .map(|_| rt.add_server(cfg.instance.clone()))
        .collect();
    let ids: Vec<ActorId> = (0..cfg.users as u64).map(ActorId).collect();
    for i in 0..cfg.users {
        let peers: Vec<ActorId> = ids
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &p)| p)
            .collect();
        let id = rt.spawn_actor(
            "ChatUser",
            Box::new(ChatUser {
                peers: peers.clone(),
                say_work: 0.0015,
                recv_work: 0.0002,
            }),
            16 << 10,
            servers[i % servers.len()],
        );
        assert_eq!(id, ids[i], "deterministic id assignment");
        for p in peers {
            rt.actor_add_ref(id, "room", p);
        }
    }
    for &u in &ids {
        rt.add_client(Box::new(Pulse {
            target: u,
            fname: "say",
            bytes: 128,
            period: SimDuration::from_millis(250),
        }));
    }
    rt.run_until(SimTime::ZERO + run_for);
    ChatChaosReport {
        replies: rt.report().replies,
        eval: ElasticityEval::collect(&rt),
        chaos: ChaosEval::collect(&rt),
    }
}

/// Runs the Table-3 comparison: normalized execution time with profiling
/// enabled over profiling disabled (1.0 = no overhead).
pub fn normalized_overhead(users: usize, instance: InstanceType, seed: u64) -> f64 {
    let base = ChatConfig {
        users,
        instance,
        messages_per_user: 150,
        epr_enabled: false,
        seed,
        ..ChatConfig::default()
    };
    let with_epr = ChatConfig {
        epr_enabled: true,
        ..base.clone()
    };
    let t_off = run(&base).makespan.as_secs_f64();
    let t_on = run(&with_epr).makespan.as_secs_f64();
    t_on / t_off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chat_room_completes() {
        let report = run(&ChatConfig {
            users: 4,
            messages_per_user: 20,
            ..ChatConfig::default()
        });
        assert!(report.makespan < SimDuration::from_secs(3_600));
        assert!(report.mean_latency_ms > 0.0);
    }

    #[test]
    fn overhead_is_small_but_positive() {
        let ratio = normalized_overhead(8, InstanceType::m1_small(), 7);
        assert!(ratio > 1.0, "profiling must cost something: {ratio}");
        assert!(ratio < 1.03, "Table 3 band is <= 2.3%: {ratio}");
    }

    #[test]
    fn more_users_still_bounded_overhead() {
        let ratio = normalized_overhead(16, InstanceType::m1_medium(), 9);
        assert!((1.0..1.03).contains(&ratio), "ratio {ratio}");
    }
}
