//! Piccolo-style partitioned-table computation (Table 1).
//!
//! Piccolo programs are kernels running on `Worker` actors that read and
//! accumulate into partitioned in-memory `Table` actors. The Table-1 rules:
//!
//! 1. balance CPU workload for Workers,
//! 2. colocate each Worker with the Table partition it reads from.

use plasma::prelude::*;
use plasma_sim::SimTime;

/// Schema for the Piccolo policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("kernel");
    schema.actor_type("Table").func("get").func("put");
    schema
}

/// The Table-1 Piccolo rules.
pub fn policy() -> &'static str {
    "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);\n\
     Worker(w).call(Table(t).get).count > 0 => colocate(t, w);"
}

/// A self-driving kernel worker: each round it reads its table, computes,
/// and writes back, then schedules the next round via a self-message.
struct Worker {
    table: ActorId,
    compute_work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("kernel") {
            ctx.work(self.compute_work);
            ctx.send_detached(self.table, "get", 4 << 10);
            ctx.send_detached(self.table, "put", 8 << 10);
            // Next round.
            let me = ctx.me();
            ctx.send_detached(me, "kernel", 16);
        }
    }
}

/// A table partition: cheap gets/puts over real storage.
struct Table {
    entries: std::collections::BTreeMap<u64, f64>,
    cursor: u64,
}

impl ActorLogic for Table {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.0005);
        if msg.fname == ctx.fn_id("put") {
            self.cursor += 1;
            let k = self.cursor % 1024;
            *self.entries.entry(k).or_insert(0.0) += 1.0;
        }
    }
}

/// Piccolo experiment configuration.
#[derive(Clone, Debug)]
pub struct PiccoloConfig {
    /// Number of workers (and tables).
    pub workers: usize,
    /// Servers.
    pub servers: usize,
    /// Per-round compute work of worker `i` is
    /// `base_work * (1 + i * skew)` — heterogeneous kernels.
    pub base_work: f64,
    /// Work skew across workers.
    pub skew: f64,
    /// Run length.
    pub run_for: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PiccoloConfig {
    fn default() -> Self {
        PiccoloConfig {
            workers: 12,
            servers: 4,
            base_work: 0.015,
            skew: 0.25,
            run_for: SimDuration::from_secs(200),
            seed: 41,
        }
    }
}

/// Results of one Piccolo run.
#[derive(Debug)]
pub struct PiccoloReport {
    /// Workers colocated with their table at the end.
    pub colocated: usize,
    /// Total workers.
    pub workers: usize,
    /// Max/min per-server CPU over the last window.
    pub cpu_spread: (f64, f64),
    /// Migrations performed.
    pub migrations: usize,
}

/// Runs Piccolo under the Table-1 policy.
pub fn run(cfg: &PiccoloConfig) -> PiccoloReport {
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: cfg.seed,
            elasticity_period: SimDuration::from_secs(20),
            min_residency: SimDuration::from_secs(20),
            profile_window: SimDuration::from_secs(20),
            ..RuntimeConfig::default()
        })
        .policy(policy(), &schema())
        .build()
        .expect("piccolo policy compiles");
    let rt = app.runtime_mut();
    let servers: Vec<ServerId> = (0..cfg.servers)
        .map(|_| rt.add_server(InstanceType::m1_medium()))
        .collect();
    let mut pairs = Vec::new();
    for i in 0..cfg.workers {
        // Workers start clustered on the first half of the cluster; their
        // tables start on the second half (worst-case locality).
        let ws = servers[i % (cfg.servers / 2).max(1)];
        let ts = servers[cfg.servers / 2 + i % (cfg.servers - cfg.servers / 2)];
        let table = rt.spawn_actor(
            "Table",
            Box::new(Table {
                entries: Default::default(),
                cursor: 0,
            }),
            24 << 20,
            ts,
        );
        let work = cfg.base_work * (1.0 + i as f64 * cfg.skew);
        let worker = rt.spawn_actor(
            "Worker",
            Box::new(Worker {
                table,
                compute_work: work,
            }),
            2 << 20,
            ws,
        );
        rt.inject(worker, "kernel", 16, None);
        pairs.push((worker, table));
    }
    app.run_until(SimTime::ZERO + cfg.run_for);
    let rt = app.runtime();
    let colocated = pairs
        .iter()
        .filter(|&&(w, t)| rt.actor_server(w) == rt.actor_server(t))
        .count();
    let mut cpus: Vec<f64> = rt
        .cluster()
        .running_ids()
        .into_iter()
        .filter_map(|s| rt.snapshot().server(s).map(|x| x.usage.cpu()))
        .collect();
    cpus.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    PiccoloReport {
        colocated,
        workers: cfg.workers,
        cpu_spread: (
            cpus.first().copied().unwrap_or(0.0),
            cpus.last().copied().unwrap_or(0.0),
        ),
        migrations: rt.report().migrations.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_follow_their_workers() {
        let report = run(&PiccoloConfig::default());
        assert!(report.migrations > 0);
        assert!(
            report.colocated * 3 >= report.workers * 2,
            "most worker-table pairs colocated: {}/{}",
            report.colocated,
            report.workers
        );
    }

    #[test]
    fn cpu_balanced_within_reasonable_spread() {
        let report = run(&PiccoloConfig::default());
        let (min, max) = report.cpu_spread;
        assert!(
            max - min < 0.45,
            "cpu spread after balancing: {min:.2}..{max:.2}"
        );
    }
}
