//! The Halo 4 Presence Service (§3.3, §5.7, Fig. 11).
//!
//! Game consoles send periodic heartbeats: a random `Router` receives each
//! heartbeat, (optionally) decrypts it, and forwards it to the player's
//! `Session` actor, which forwards it to the `Player` actor. Players belong
//! to exactly one session, so colocating each player with its session
//! eliminates the session-to-player remote hop.
//!
//! Two experiments:
//!
//! - **Interaction rule** (Fig. 11a/b): the §3.3 rule
//!   `Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);`
//!   versus the frequency-based *default rule* that places new players
//!   randomly and colocates them only after observing traffic.
//! - **Resource rule** (Fig. 11c): decryption makes routers CPU-hungry;
//!   `balance({Router}, cpu)` spreads them as clients join, evaluated with
//!   1, 2 and 4 GEMs.

use plasma::prelude::*;
use plasma_sim::SimTime;

use crate::common::{ChaosEval, ElasticityEval, EvalScale};

/// Schema for the Halo policies.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Router").func("heartbeat");
    schema
        .actor_type("Session")
        .prop("players")
        .func("join")
        .func("heartbeat");
    schema.actor_type("Player").func("heartbeat");
    schema
}

/// The §3.3 interaction rule.
pub fn interaction_policy() -> &'static str {
    "Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);"
}

/// The Table-1 resource rule for CPU-hungry routers, plus the interaction
/// rule (§5.7 runs both kinds together).
pub fn resource_policy() -> &'static str {
    "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Router}, cpu);\n\
     Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);"
}

/// Elasticity management under test for Fig. 11a/b.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// The interaction rule (`inter-rule`).
    InterRule,
    /// The frequency-based default rule (`def-rule`).
    DefRule,
}

/// Heartbeat routing payload.
struct Heartbeat {
    session: ActorId,
    player: ActorId,
}

/// Reply payload carrying the ids a joining client needs.
struct Joined {
    player: ActorId,
}

struct Router {
    decrypt_work: f64,
}

impl ActorLogic for Router {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(self.decrypt_work);
        if let Some(hb) = msg.take_payload::<Heartbeat>() {
            let session = hb.session;
            ctx.send_with(session, "heartbeat", 96, hb);
        }
    }
}

struct Session {
    heartbeat_work: f64,
}

impl ActorLogic for Session {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("join") {
            ctx.work(0.0008);
            let player = ctx.spawn(
                "Player",
                Box::new(Player {
                    heartbeat_work: 0.0002,
                }),
                64 << 10,
            );
            ctx.add_ref("players", player);
            ctx.reply_with(48, Box::new(Joined { player }));
        } else if msg.fname == ctx.fn_id("heartbeat") {
            ctx.work(self.heartbeat_work);
            if let Some(hb) = msg.take_payload::<Heartbeat>() {
                // Sessions may only message their own players (§3.3).
                if ctx.refs("players").contains(&hb.player) {
                    ctx.send(hb.player, "heartbeat", 64);
                }
            }
        }
    }
}

struct Player {
    heartbeat_work: f64,
}

impl ActorLogic for Player {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.heartbeat_work);
        ctx.reply(32);
    }
}

/// A game console: joins its session at `join_at`, then heartbeats through
/// random routers.
struct Console {
    session: ActorId,
    routers: Vec<ActorId>,
    player: Option<ActorId>,
    join_at: SimDuration,
    heartbeat_period: SimDuration,
}

const TOKEN_JOIN: u64 = 1;
const TOKEN_BEAT: u64 = 2;

impl ClientLogic for Console {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(self.join_at, TOKEN_JOIN);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        payload: Option<Payload>,
    ) {
        if let Some(joined) = payload.and_then(|p| p.downcast::<Joined>().ok()) {
            self.player = Some(joined.player);
            ctx.set_timer(self.heartbeat_period, TOKEN_BEAT);
        }
        // Heartbeat replies need no action; the next beat is timer-driven.
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, token: u64) {
        match token {
            TOKEN_JOIN => {
                ctx.request(self.session, "join", 128);
            }
            TOKEN_BEAT => {
                if let Some(player) = self.player {
                    let router = *ctx.rng().choose(&self.routers.clone());
                    ctx.request_with(
                        router,
                        "heartbeat",
                        160,
                        Box::new(Heartbeat {
                            session: self.session,
                            player,
                        }),
                    );
                }
                ctx.set_timer(self.heartbeat_period, TOKEN_BEAT);
            }
            _ => {}
        }
    }
}

/// Fig. 11a/b configuration.
#[derive(Clone, Debug)]
pub struct HaloConfig {
    /// Routers (one per server in the paper).
    pub routers: usize,
    /// Sessions (one per server in the paper).
    pub sessions: usize,
    /// Servers.
    pub servers: usize,
    /// Clients joining in `rounds` waves.
    pub clients: usize,
    /// Number of join waves (4 in the paper).
    pub rounds: usize,
    /// Length of each wave (180 s in the paper).
    pub round_len: SimDuration,
    /// Elasticity period (70 s in the paper).
    pub period: SimDuration,
    /// Elasticity mode.
    pub mode: Mode,
    /// Number of GEMs partitioning the servers (1 in the paper's 11a/b).
    pub gems: usize,
    /// Faults injected during the run (empty = none, byte-identical runs).
    pub faults: FaultPlan,
    /// Detection and recovery policy for the fault plan.
    pub recovery: RecoveryPolicy,
    /// Execution backend carrying deliveries and service time.
    pub backend: BackendKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HaloConfig {
    fn default() -> Self {
        HaloConfig {
            routers: 8,
            sessions: 8,
            servers: 8,
            clients: 32,
            rounds: 4,
            round_len: SimDuration::from_secs(180),
            period: SimDuration::from_secs(70),
            mode: Mode::InterRule,
            gems: 1,
            faults: FaultPlan::new(),
            recovery: RecoveryPolicy::default(),
            backend: BackendKind::Sim,
            seed: 23,
        }
    }
}

impl HaloConfig {
    /// The evaluation-harness preset at the given scale.
    pub fn preset(scale: EvalScale) -> Self {
        match scale {
            EvalScale::Full => HaloConfig::default(),
            EvalScale::Smoke => HaloConfig {
                routers: 4,
                sessions: 4,
                servers: 4,
                clients: 12,
                rounds: 2,
                round_len: SimDuration::from_secs(60),
                period: SimDuration::from_secs(30),
                ..HaloConfig::default()
            },
            EvalScale::Xl => HaloConfig {
                routers: 32,
                sessions: 32,
                servers: 16,
                clients: 128,
                ..HaloConfig::default()
            },
        }
    }

    /// The chaos-variant preset: two GEMs manage the cluster; a partition
    /// splits two servers off mid-join-wave (heartbeats across the cut are
    /// lost and cross-partition migrations refused), heals, and then one
    /// GEM crash-stops — its servers re-shuffle onto the survivor (§4.3).
    pub fn chaos_preset(scale: EvalScale) -> Self {
        let faults = FaultPlan::new()
            .partition(
                SimTime::from_secs(20),
                [ServerId(2), ServerId(3)],
                Some(SimDuration::from_secs(20)),
            )
            .crash_gem(SimTime::from_secs(70), 1);
        HaloConfig {
            gems: 2,
            faults,
            seed: 41,
            ..HaloConfig::preset(scale)
        }
    }
}

/// Results of one Fig. 11a/b run.
#[derive(Debug)]
pub struct HaloReport {
    /// Mean latency per 5-second bucket.
    pub latency_series: Vec<(f64, f64)>,
    /// Per-client latency series (Fig. 11b).
    pub client_latency: Vec<(u32, Vec<(f64, f64)>)>,
    /// Mean latency in milliseconds over the whole run.
    pub mean_ms: f64,
    /// Peak bucket latency (spikiness indicator).
    pub peak_ms: f64,
    /// Migrations performed.
    pub migrations: usize,
    /// Players ending the run on their session's server / total players.
    pub colocated: (usize, usize),
    /// Scenario-independent elasticity stats.
    pub eval: ElasticityEval,
    /// Recovery metrics (all zero on a fault-free run).
    pub chaos: ChaosEval,
}

/// The slow inter-instance network of the m1.small era: remote hops cost
/// whole milliseconds, which is what makes player placement visible in
/// Fig. 11.
fn halo_network() -> NetworkModel {
    NetworkModel {
        local_latency: SimDuration::from_micros(200),
        remote_latency: SimDuration::from_millis(3),
        control_latency: SimDuration::from_millis(1),
        client_latency: SimDuration::from_millis(7),
    }
}

/// Runs the Fig. 11a/b interaction-rule experiment.
pub fn run(cfg: &HaloConfig) -> HaloReport {
    let runtime_cfg = RuntimeConfig {
        seed: cfg.seed,
        elasticity_period: cfg.period,
        min_residency: cfg.period,
        network: halo_network(),
        profile_window: SimDuration::from_secs(5),
        latency_bucket: SimDuration::from_secs(5),
        backend: cfg.backend,
        ..RuntimeConfig::default()
    };
    let mut app = match cfg.mode {
        Mode::InterRule => Plasma::builder()
            .runtime_config(runtime_cfg)
            .emr_config(EmrConfig {
                num_gems: cfg.gems.max(1),
                ..EmrConfig::default()
            })
            .policy(interaction_policy(), &schema())
            .build()
            .expect("halo policy compiles"),
        Mode::DefRule => Plasma::builder()
            .runtime_config(runtime_cfg)
            .controller(Box::new(FrequencyColocate::new(8)))
            .build()
            .expect("builds"),
    };
    let rt = app.runtime_mut();
    rt.install_fault_plan(&cfg.faults, cfg.recovery);
    let servers: Vec<ServerId> = (0..cfg.servers)
        .map(|_| rt.add_server(InstanceType::m1_small()))
        .collect();
    let routers: Vec<ActorId> = (0..cfg.routers)
        .map(|i| {
            rt.spawn_actor(
                "Router",
                // Fig. 11a routers skip decryption to highlight messaging.
                Box::new(Router { decrypt_work: 0.0 }),
                32 << 10,
                servers[i % servers.len()],
            )
        })
        .collect();
    let sessions: Vec<ActorId> = (0..cfg.sessions)
        .map(|i| {
            rt.spawn_actor(
                "Session",
                Box::new(Session {
                    heartbeat_work: 0.0003,
                }),
                128 << 10,
                servers[i % servers.len()],
            )
        })
        .collect();
    let mut rng = DetRng::new(cfg.seed ^ 0xC0FFEE);
    for c in 0..cfg.clients {
        let round = c % cfg.rounds;
        let offset = rng.range_f64(0.0, cfg.round_len.as_secs_f64());
        let join_at = cfg.round_len * round as u64 + SimDuration::from_secs_f64(offset)
            - SimTime::ZERO.saturating_since(SimTime::ZERO);
        rt.add_client(Box::new(Console {
            session: sessions[c % sessions.len()],
            routers: routers.clone(),
            player: None,
            join_at,
            heartbeat_period: SimDuration::from_millis(500),
        }));
    }
    let end = SimTime::ZERO + cfg.round_len * (cfg.rounds as u64 + 1);
    app.run_until(end);
    let mut colocated = (0usize, 0usize);
    for &session in &sessions {
        let home = app.runtime().actor_server(session);
        for p in app.runtime().actor_refs(session, "players") {
            colocated.1 += 1;
            if app.runtime().actor_server(p) == home {
                colocated.0 += 1;
            }
        }
    }
    let report = app.report();
    let latency_series: Vec<(f64, f64)> = report
        .latency_series
        .buckets()
        .into_iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    HaloReport {
        mean_ms: report.mean_latency_ms(),
        peak_ms: latency_series.iter().map(|&(_, v)| v).fold(0.0, f64::max),
        migrations: report.migrations.len(),
        colocated,
        eval: ElasticityEval::collect(app.runtime()),
        chaos: ChaosEval::collect(app.runtime()),
        client_latency: report
            .client_latency
            .iter()
            .map(|(&c, series)| {
                (
                    c.0,
                    series
                        .buckets()
                        .into_iter()
                        .map(|(t, v)| (t.as_secs_f64(), v))
                        .collect(),
                )
            })
            .collect(),
        latency_series,
    }
}

/// Fig. 11c configuration: CPU-heavy routers balanced across a larger
/// cluster by 1, 2 or 4 GEMs.
#[derive(Clone, Debug)]
pub struct HaloScaleConfig {
    /// Sessions (each on its own server; 64 in the paper).
    pub sessions: usize,
    /// Routers, initially packed onto the first servers (32 in the paper).
    pub routers: usize,
    /// Servers initially hosting routers (8 in the paper).
    pub router_servers: usize,
    /// Clients (128 in the paper).
    pub clients: usize,
    /// Number of GEMs (1/2/4 in Fig. 11c).
    pub gems: usize,
    /// Elasticity period (80 s in the paper).
    pub period: SimDuration,
    /// Run length.
    pub run_for: SimDuration,
    /// Execution backend carrying deliveries and service time.
    pub backend: BackendKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HaloScaleConfig {
    fn default() -> Self {
        HaloScaleConfig {
            sessions: 64,
            routers: 32,
            router_servers: 8,
            clients: 128,
            gems: 1,
            period: SimDuration::from_secs(80),
            run_for: SimDuration::from_secs(780),
            backend: BackendKind::Sim,
            seed: 29,
        }
    }
}

/// Results of one Fig. 11c run.
#[derive(Debug)]
pub struct HaloScaleReport {
    /// Mean latency per 10-second bucket.
    pub latency_series: Vec<(f64, f64)>,
    /// Mean latency over the final quarter of the run.
    pub tail_ms: f64,
    /// Migrations performed.
    pub migrations: usize,
}

/// Runs the Fig. 11c resource-rule experiment.
pub fn run_scale(cfg: &HaloScaleConfig) -> HaloScaleReport {
    let runtime_cfg = RuntimeConfig {
        seed: cfg.seed,
        elasticity_period: cfg.period,
        min_residency: cfg.period,
        network: halo_network(),
        profile_window: SimDuration::from_secs(10),
        latency_bucket: SimDuration::from_secs(10),
        backend: cfg.backend,
        ..RuntimeConfig::default()
    };
    let mut app = Plasma::builder()
        .runtime_config(runtime_cfg)
        .emr_config(EmrConfig {
            num_gems: cfg.gems,
            ..EmrConfig::default()
        })
        .policy(resource_policy(), &schema())
        .build()
        .expect("halo resource policy compiles");
    let rt = app.runtime_mut();
    let servers: Vec<ServerId> = (0..cfg.sessions)
        .map(|_| rt.add_server(InstanceType::m1_small()))
        .collect();
    let routers: Vec<ActorId> = (0..cfg.routers)
        .map(|i| {
            rt.spawn_actor(
                "Router",
                Box::new(Router {
                    decrypt_work: 0.0035,
                }),
                32 << 10,
                servers[i % cfg.router_servers],
            )
        })
        .collect();
    let sessions: Vec<ActorId> = (0..cfg.sessions)
        .map(|i| {
            rt.spawn_actor(
                "Session",
                Box::new(Session {
                    heartbeat_work: 0.0003,
                }),
                128 << 10,
                servers[i],
            )
        })
        .collect();
    let mut rng = DetRng::new(cfg.seed ^ 0xFEED);
    let join_window = cfg.run_for.mul_f64(0.4);
    for c in 0..cfg.clients {
        let join_at = SimDuration::from_secs_f64(rng.range_f64(0.0, join_window.as_secs_f64()));
        rt.add_client(Box::new(Console {
            session: sessions[c % sessions.len()],
            routers: routers.clone(),
            player: None,
            join_at,
            heartbeat_period: SimDuration::from_millis(400),
        }));
    }
    let end = SimTime::ZERO + cfg.run_for;
    app.run_until(end);
    let report = app.report();
    let latency_series: Vec<(f64, f64)> = report
        .latency_series
        .buckets()
        .into_iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    let tail_start = cfg.run_for.mul_f64(0.75).as_secs_f64();
    let tail: Vec<f64> = latency_series
        .iter()
        .filter(|&&(t, _)| t >= tail_start)
        .map(|&(_, v)| v)
        .collect();
    HaloScaleReport {
        tail_ms: if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        },
        migrations: report.migrations.len(),
        latency_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_rule_is_smooth_and_low() {
        let inter = run(&HaloConfig::default());
        let def = run(&HaloConfig {
            mode: Mode::DefRule,
            ..HaloConfig::default()
        });
        assert!(
            inter.mean_ms < def.mean_ms,
            "inter {} vs def {}",
            inter.mean_ms,
            def.mean_ms
        );
        // The default rule produces join-round latency spikes (Fig. 11a).
        assert!(
            def.peak_ms > inter.peak_ms * 1.15,
            "def peak {} vs inter peak {}",
            def.peak_ms,
            inter.peak_ms
        );
    }

    #[test]
    fn def_rule_recovers_after_redistribution() {
        let def = run(&HaloConfig {
            mode: Mode::DefRule,
            rounds: 1,
            clients: 8,
            round_len: SimDuration::from_secs(180),
            ..HaloConfig::default()
        });
        // After the first elasticity period players get colocated, so the
        // last buckets approach the well-placed latency.
        let early: Vec<f64> = def
            .latency_series
            .iter()
            .filter(|&&(t, _)| t < 70.0)
            .map(|&(_, v)| v)
            .collect();
        // Joins continue until 180 s and residency delays re-placement, so
        // convergence completes by ~280 s (Fig. 11a's recovery windows).
        let late: Vec<f64> = def
            .latency_series
            .iter()
            .filter(|&&(t, _)| t > 280.0)
            .map(|&(_, v)| v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(def.migrations > 0, "frequency rule migrated players");
        assert!(
            mean(&late) < mean(&early),
            "late {} vs early {}",
            mean(&late),
            mean(&early)
        );
    }

    #[test]
    fn per_client_latency_split_between_lucky_and_unlucky() {
        let def = run(&HaloConfig {
            mode: Mode::DefRule,
            rounds: 1,
            clients: 8,
            ..HaloConfig::default()
        });
        // Fig. 11b: some clients start well-placed, others ~35% higher.
        let firsts: Vec<f64> = def
            .client_latency
            .iter()
            .filter_map(|(_, series)| series.first().map(|&(_, v)| v))
            .collect();
        let min = firsts.iter().copied().fold(f64::INFINITY, f64::min);
        let max = firsts.iter().copied().fold(0.0, f64::max);
        assert!(
            max > min * 1.15,
            "expected placement-dependent spread, got {min}..{max}"
        );
    }

    #[test]
    fn scale_rule_stabilizes_latency_with_any_gem_count() {
        let mut tails = Vec::new();
        for gems in [1usize, 2, 4] {
            let r = run_scale(&HaloScaleConfig {
                gems,
                sessions: 24,
                routers: 12,
                router_servers: 4,
                clients: 48,
                run_for: SimDuration::from_secs(600),
                ..HaloScaleConfig::default()
            });
            assert!(r.migrations > 0, "{gems} GEMs migrated routers");
            tails.push(r.tail_ms);
        }
        // GEM count has only a small impact (Fig. 11c).
        let max = tails.iter().copied().fold(0.0, f64::max);
        let min = tails.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 1.3,
            "GEM counts should perform similarly: {tails:?}"
        );
    }
}
