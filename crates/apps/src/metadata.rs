//! The Metadata Server (§3.3, §5.3, Fig. 5).
//!
//! Folders and files are actors; opening a folder touches every file in it
//! (one designated file completes the client's request, the rest are
//! touched in the background). One folder is in much higher demand than
//! the rest, overloading its `m1.small` host. Three elasticity setups are
//! compared:
//!
//! - **res-col-rule** — the paper's rule: reserve the hot folder a server
//!   and colocate its files with it.
//! - **def-rule** — migrate the heaviest actor to an idle server, without
//!   knowing folders drag their files along (the gains are nullified by
//!   the folder-to-file remote hops, as in the paper).
//! - **no-rule** — no elasticity at all.

use plasma::prelude::*;
use plasma_sim::metrics::BucketedSeries;
use plasma_sim::SimTime;

/// The schema the Fig. 5 policy compiles against.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Folder").prop("files").func("open");
    schema.actor_type("File").func("read");
    schema
}

/// The paper's Metadata Server policy (§3.3), verbatim.
pub fn policy() -> &'static str {
    "server.cpu.perc > 80 and \
     client.call(Folder(fo).open).perc > 40 and \
     File(fi) in ref(fo.files) => \
     reserve(fo, cpu); colocate(fo, fi);"
}

/// Which elasticity management the run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// The paper's reserve + colocate rule.
    ResColRule,
    /// Heaviest-actor-to-idle-server default rule.
    DefRule,
    /// No elasticity management.
    NoRule,
}

/// Metadata Server experiment configuration (§5.3 defaults).
#[derive(Clone, Debug)]
pub struct MetadataConfig {
    /// Number of folders.
    pub folders: usize,
    /// Files per folder.
    pub files_per_folder: usize,
    /// Number of clients.
    pub clients: usize,
    /// Fraction of requests hitting folder 0.
    pub hot_share: f64,
    /// Elasticity period.
    pub period: SimDuration,
    /// Total run length.
    pub run_for: SimDuration,
    /// Elasticity mode.
    pub mode: Mode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MetadataConfig {
    fn default() -> Self {
        MetadataConfig {
            folders: 4,
            files_per_folder: 8,
            clients: 16,
            hot_share: 0.5,
            period: SimDuration::from_secs(80),
            run_for: SimDuration::from_secs(200),
            mode: Mode::ResColRule,
            seed: 11,
        }
    }
}

/// Results of one Metadata Server run.
#[derive(Debug)]
pub struct MetadataReport {
    /// Mean latency per second of the run (Fig. 5's series).
    pub latency_series: BucketedSeries,
    /// Mean latency before the first elasticity period.
    pub before_ms: f64,
    /// Mean latency over the final quarter of the run.
    pub after_ms: f64,
    /// Migrations performed.
    pub migrations: usize,
}

struct Folder {
    files: Vec<ActorId>,
    next_responder: usize,
    open_work: f64,
}

impl ActorLogic for Folder {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.open_work);
        if self.files.is_empty() {
            ctx.reply(256);
            return;
        }
        // One file completes the request; the rest are accessed in the
        // background (metadata scans touch the whole directory).
        let responder = self.files[self.next_responder % self.files.len()];
        self.next_responder += 1;
        ctx.send(responder, "read", 128);
        for &f in &self.files {
            if f != responder {
                ctx.send_detached(f, "read", 128);
            }
        }
    }
}

struct File {
    read_work: f64,
}

impl ActorLogic for File {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(self.read_work);
        if msg.corr.is_some() {
            ctx.reply(512);
        }
    }
}

/// A client that picks a folder per request: hot folder with probability
/// `hot_share`, the rest uniformly.
struct MetadataClient {
    folders: Vec<ActorId>,
    hot_share: f64,
    think: SimDuration,
}

impl MetadataClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let target = if ctx.rng().chance(self.hot_share) || self.folders.len() == 1 {
            self.folders[0]
        } else {
            let rest = self.folders.len() - 1;
            self.folders[1 + ctx.rng().index(rest)]
        };
        ctx.request(target, "open", 96);
    }
}

impl ClientLogic for MetadataClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(self.think, 0);
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

/// Runs the Metadata Server experiment.
pub fn run(cfg: &MetadataConfig) -> MetadataReport {
    let runtime_cfg = RuntimeConfig {
        seed: cfg.seed,
        elasticity_period: cfg.period,
        min_residency: cfg.period,
        ..RuntimeConfig::default()
    };
    let mut app = match cfg.mode {
        Mode::ResColRule => Plasma::builder()
            .runtime_config(runtime_cfg)
            .policy(policy(), &schema())
            .build()
            .expect("metadata policy compiles"),
        Mode::DefRule => Plasma::builder()
            .runtime_config(runtime_cfg)
            .controller(Box::new(HeavyToIdle::new(0.8)))
            .build()
            .expect("no policy to compile"),
        Mode::NoRule => Plasma::builder()
            .runtime_config(runtime_cfg)
            .build()
            .expect("no policy to compile"),
    };
    let rt = app.runtime_mut();
    let main_server = rt.add_server(InstanceType::m1_small());
    // The elastic setups get one extra (initially idle) server, as in §5.3.
    if cfg.mode != Mode::NoRule {
        rt.add_server(InstanceType::m1_small());
    }
    let mut folders = Vec::with_capacity(cfg.folders);
    for _ in 0..cfg.folders {
        let files: Vec<ActorId> = (0..cfg.files_per_folder)
            .map(|_| {
                rt.spawn_actor(
                    "File",
                    Box::new(File { read_work: 0.0016 }),
                    256 << 10,
                    main_server,
                )
            })
            .collect();
        let folder = rt.spawn_actor(
            "Folder",
            Box::new(Folder {
                files: files.clone(),
                next_responder: 0,
                open_work: 0.001,
            }),
            128 << 10,
            main_server,
        );
        for f in files {
            rt.actor_add_ref(folder, "files", f);
        }
        folders.push(folder);
    }
    for _ in 0..cfg.clients {
        rt.add_client(Box::new(MetadataClient {
            folders: folders.clone(),
            hot_share: cfg.hot_share,
            think: SimDuration::from_millis(60),
        }));
    }
    let end = SimTime::ZERO + cfg.run_for;
    app.run_until(end);
    let report = app.report();
    let buckets = report.latency_series.buckets();
    let first_period_end = SimTime::ZERO + cfg.period;
    let tail_start = SimTime::ZERO + cfg.run_for.mul_f64(0.75);
    let mean_over = |from: SimTime, to: SimTime| {
        let vals: Vec<f64> = buckets
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    MetadataReport {
        before_ms: mean_over(SimTime::ZERO, first_period_end),
        after_ms: mean_over(tail_start, end),
        migrations: report.migrations.len(),
        latency_series: report.latency_series.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: Mode) -> MetadataReport {
        run(&MetadataConfig {
            mode,
            ..MetadataConfig::default()
        })
    }

    #[test]
    fn res_col_rule_cuts_latency_substantially() {
        let elastic = quick(Mode::ResColRule);
        let vanilla = quick(Mode::NoRule);
        assert!(elastic.migrations >= 1, "rule fired");
        let gain = 1.0 - elastic.after_ms / vanilla.after_ms;
        assert!(
            gain > 0.25,
            "expected ~40% latency reduction, got {:.0}% ({} vs {})",
            gain * 100.0,
            elastic.after_ms,
            vanilla.after_ms
        );
    }

    #[test]
    fn def_rule_shows_no_real_benefit() {
        let def = quick(Mode::DefRule);
        let vanilla = quick(Mode::NoRule);
        // The default rule migrates actors...
        assert!(def.migrations >= 1);
        // ...but remote folder-to-file traffic eats the gains (Fig. 5).
        let gain = 1.0 - def.after_ms / vanilla.after_ms;
        assert!(
            gain < 0.15,
            "def-rule should not approach the informed rule, got {:.0}%",
            gain * 100.0
        );
    }

    #[test]
    fn hot_folder_ends_up_reserved_with_its_files() {
        let cfg = MetadataConfig::default();
        let runtime_cfg = RuntimeConfig {
            seed: cfg.seed,
            elasticity_period: cfg.period,
            min_residency: cfg.period,
            ..RuntimeConfig::default()
        };
        let mut app = Plasma::builder()
            .runtime_config(runtime_cfg)
            .policy(policy(), &schema())
            .build()
            .unwrap();
        let rt = app.runtime_mut();
        let s0 = rt.add_server(InstanceType::m1_small());
        let _s1 = rt.add_server(InstanceType::m1_small());
        let mut folders = Vec::new();
        for _ in 0..cfg.folders {
            let files: Vec<ActorId> = (0..cfg.files_per_folder)
                .map(|_| {
                    rt.spawn_actor("File", Box::new(File { read_work: 0.0016 }), 256 << 10, s0)
                })
                .collect();
            let folder = rt.spawn_actor(
                "Folder",
                Box::new(Folder {
                    files: files.clone(),
                    next_responder: 0,
                    open_work: 0.001,
                }),
                128 << 10,
                s0,
            );
            for f in files {
                rt.actor_add_ref(folder, "files", f);
            }
            folders.push(folder);
        }
        for _ in 0..cfg.clients {
            rt.add_client(Box::new(MetadataClient {
                folders: folders.clone(),
                hot_share: cfg.hot_share,
                think: SimDuration::from_millis(60),
            }));
        }
        app.run_until(SimTime::from_secs(200));
        let rt = app.runtime();
        let hot = folders[0];
        let hot_server = rt.actor_server(hot);
        assert_ne!(hot_server, s0, "hot folder moved off the loaded server");
        for f in rt.actor_refs(hot, "files") {
            assert_eq!(rt.actor_server(f), hot_server, "files follow the folder");
        }
    }
}
