#![warn(missing_docs)]

//! The PLASMA application suite.
//!
//! Table 1 of the paper lists ten applications ported to PLASMA; the first
//! five are evaluated in §5 and the chat-room microbenchmark drives the
//! overhead study of §5.2. This crate implements all of them against the
//! actor runtime, each exposing:
//!
//! - `schema()` — the actor types/properties/functions the EPL compiles
//!   against,
//! - `policy()` — the paper's elasticity rules, verbatim in EPL syntax,
//! - a config struct and a `run(...)` entry point returning the
//!   measurements its paper figure needs.
//!
//! | module | application | paper section |
//! |---|---|---|
//! | [`chatroom`] | chat-room microbenchmark | §5.2, Table 3 |
//! | [`metadata`] | Metadata Server | §5.3, Fig. 5 |
//! | [`pagerank`] | distributed PageRank (+ Mizan baseline) | §5.4, Figs. 6-8 |
//! | [`estore`] | E-Store elastic OLTP partitioning | §5.5, Fig. 9 |
//! | [`media`] | Media Service microservices | §5.6, Fig. 10 |
//! | [`halo`] | Halo 4 Presence Service | §5.7, Fig. 11 |
//! | [`bptree`] | distributed B+ tree | Table 1 |
//! | [`piccolo`] | Piccolo-style partitioned tables | Table 1 |
//! | [`zexpander`] | zExpander-style key-value cache | Table 1 |
//! | [`cassandra`] | Cassandra-style replica placement | Table 1 |

pub mod bptree;
pub mod cassandra;
pub mod chatroom;
pub mod common;
pub mod estore;
pub mod halo;
pub mod media;
pub mod metadata;
pub mod pagerank;
pub mod piccolo;
pub mod table1;
pub mod zexpander;
