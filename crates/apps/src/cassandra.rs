//! Cassandra-style replica placement (Table 1).
//!
//! Tables are replicated for fault tolerance; replicas of the same table
//! must not share a server, or one machine failure takes out multiple
//! copies. The Table-1 rule expresses exactly that with `separate` over the
//! table's replica references — a purely structural policy (no resource
//! condition at all).

use plasma::prelude::*;
use plasma_sim::SimTime;

/// Schema for the Cassandra policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema
        .actor_type("TableMeta")
        .prop("replicas")
        .func("locate");
    schema.actor_type("Replica").func("read").func("write");
    schema
}

/// The Table-1 Cassandra rule: replicas of one table on different servers.
pub fn policy() -> &'static str {
    "Replica(r1) in ref(TableMeta(t).replicas) and \
     Replica(r2) in ref(t.replicas) => separate(r1, r2);"
}

/// Table metadata: routes reads to one replica, writes to all.
struct TableMeta {
    replicas: Vec<ActorId>,
    next: usize,
}

impl ActorLogic for TableMeta {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.0004);
        if self.replicas.is_empty() {
            ctx.reply(64);
            return;
        }
        if msg.bytes > 512 {
            // A write: fan out to every replica; the primary acknowledges.
            for (i, &r) in self.replicas.clone().iter().enumerate() {
                if i == 0 {
                    ctx.send(r, "write", msg.bytes);
                } else {
                    ctx.send_detached(r, "write", msg.bytes);
                }
            }
        } else {
            let r = self.replicas[self.next % self.replicas.len()];
            self.next += 1;
            ctx.send(r, "read", 64);
        }
    }
}

/// A data replica.
struct Replica {
    rows: u64,
}

impl ActorLogic for Replica {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        if msg.fname == ctx.fn_id("write") {
            ctx.work(0.002);
            self.rows += 1;
            ctx.set_state_size((8 << 20) + self.rows / 1024);
        } else {
            ctx.work(0.001);
        }
        if msg.corr.is_some() {
            ctx.reply(256);
        }
    }
}

/// Cassandra experiment configuration.
#[derive(Clone, Debug)]
pub struct CassandraConfig {
    /// Number of tables.
    pub tables: usize,
    /// Replication factor.
    pub replication: usize,
    /// Servers.
    pub servers: usize,
    /// Clients.
    pub clients: usize,
    /// Run length.
    pub run_for: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CassandraConfig {
    fn default() -> Self {
        CassandraConfig {
            tables: 6,
            replication: 3,
            servers: 5,
            clients: 10,
            run_for: SimDuration::from_secs(150),
            seed: 47,
        }
    }
}

/// A client mixing reads (80%) and writes (20%).
struct KvClient {
    tables: Vec<ActorId>,
    think: SimDuration,
}

impl KvClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let table = *ctx.rng().choose(&self.tables.clone());
        if ctx.rng().chance(0.2) {
            ctx.request(table, "locate", 2 << 10);
        } else {
            ctx.request(table, "locate", 96);
        }
    }
}

impl ClientLogic for KvClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(self.think, 0);
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

/// Results of one Cassandra run.
#[derive(Debug)]
pub struct CassandraReport {
    /// Tables whose replicas all ended on distinct servers.
    pub fully_separated_tables: usize,
    /// Total tables.
    pub tables: usize,
    /// Migrations performed.
    pub migrations: usize,
}

/// Runs the replica-placement experiment: all replicas start piled onto
/// one server (the worst deployment) and the policy untangles them.
pub fn run(cfg: &CassandraConfig) -> CassandraReport {
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: cfg.seed,
            elasticity_period: SimDuration::from_secs(25),
            min_residency: SimDuration::from_secs(25),
            profile_window: SimDuration::from_secs(5),
            ..RuntimeConfig::default()
        })
        .policy(policy(), &schema())
        .build()
        .expect("cassandra policy compiles");
    let rt = app.runtime_mut();
    let servers: Vec<ServerId> = (0..cfg.servers)
        .map(|_| rt.add_server(InstanceType::m1_medium()))
        .collect();
    let mut metas = Vec::new();
    let mut replica_sets = Vec::new();
    for i in 0..cfg.tables {
        let home = servers[i % 2]; // Piled onto two servers initially.
        let replicas: Vec<ActorId> = (0..cfg.replication)
            .map(|_| rt.spawn_actor("Replica", Box::new(Replica { rows: 0 }), 8 << 20, home))
            .collect();
        let meta = rt.spawn_actor(
            "TableMeta",
            Box::new(TableMeta {
                replicas: replicas.clone(),
                next: 0,
            }),
            1 << 20,
            home,
        );
        for &r in &replicas {
            rt.actor_add_ref(meta, "replicas", r);
        }
        metas.push(meta);
        replica_sets.push(replicas);
    }
    for _ in 0..cfg.clients {
        rt.add_client(Box::new(KvClient {
            tables: metas.clone(),
            think: SimDuration::from_millis(60),
        }));
    }
    app.run_until(SimTime::ZERO + cfg.run_for);
    let rt = app.runtime();
    let fully_separated_tables = replica_sets
        .iter()
        .filter(|replicas| {
            let servers: std::collections::BTreeSet<ServerId> =
                replicas.iter().map(|&r| rt.actor_server(r)).collect();
            servers.len() == replicas.len()
        })
        .count();
    CassandraReport {
        fully_separated_tables,
        tables: cfg.tables,
        migrations: rt.report().migrations.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_end_on_distinct_servers() {
        let report = run(&CassandraConfig::default());
        assert!(report.migrations > 0);
        assert!(
            report.fully_separated_tables * 3 >= report.tables * 2,
            "most tables fully separated: {}/{}",
            report.fully_separated_tables,
            report.tables
        );
    }
}
