//! E-Store: elastic partitioning for a distributed OLTP store (§5.5, Fig. 9).
//!
//! Root-level key ranges are `Partition` actors, each with child partitions
//! co-located beneath it. A `read` hits a root and then one random child.
//! The workload is heavily skewed (root *i* receives 35% of the traffic
//! remaining after roots `0..i`), overloading the server hosting the
//! hottest roots.
//!
//! Three managements are compared, as in Fig. 9:
//!
//! - **PLASMA E-Store** — the three §3.3 rules (reserve hot roots, colocate
//!   children, rebalance on low watermark).
//! - **in-app E-Store** — the paper's reimplementation of E-Store's own
//!   algorithm inside the application: on a high watermark, migrate the
//!   top-k% hottest roots (with their children) to the least-loaded server.
//! - **no elasticity**.

use std::collections::BTreeMap;

use plasma::prelude::*;
use plasma_sim::metrics::BucketedSeries;
use plasma_sim::SimTime;

use crate::common::{ChaosEval, ElasticityEval, EvalScale};

/// Schema for the E-Store policy.
pub fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Partition").prop("children").func("read");
    schema
}

/// The paper's three E-Store rules (§3.3), verbatim.
pub fn policy() -> &'static str {
    "server.cpu.perc > 80 and client.call(Partition(p1).read).perc > 30 => reserve(p1, cpu);\n\
     Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);\n\
     server.cpu.perc < 50 => balance({Partition}, cpu);"
}

/// Elasticity management under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// PLASMA rules.
    Plasma,
    /// E-Store's own top-k% migration implemented in application code.
    Native,
    /// No elasticity.
    None,
}

/// E-Store experiment configuration (§5.5 defaults, scaled).
#[derive(Clone, Debug)]
pub struct EstoreConfig {
    /// Number of root partitions (40 in the paper).
    pub roots: usize,
    /// Children per root (4 in the paper).
    pub children_per_root: usize,
    /// Initial servers (4 m1.small in the paper).
    pub servers: usize,
    /// Number of clients (48 in the paper).
    pub clients: usize,
    /// Cascade skew: root i's share of the traffic left after 0..i.
    pub skew: f64,
    /// Elasticity period.
    pub period: SimDuration,
    /// Run length.
    pub run_for: SimDuration,
    /// Elasticity mode.
    pub mode: Mode,
    /// Faults injected during the run (empty = none, byte-identical runs).
    pub faults: FaultPlan,
    /// Detection and recovery policy for the fault plan.
    pub recovery: RecoveryPolicy,
    /// Execution backend carrying deliveries and service time.
    pub backend: BackendKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EstoreConfig {
    fn default() -> Self {
        EstoreConfig {
            roots: 40,
            children_per_root: 4,
            servers: 4,
            clients: 48,
            skew: 0.35,
            period: SimDuration::from_secs(30),
            run_for: SimDuration::from_secs(220),
            mode: Mode::Plasma,
            faults: FaultPlan::new(),
            recovery: RecoveryPolicy::default(),
            backend: BackendKind::Sim,
            seed: 17,
        }
    }
}

impl EstoreConfig {
    /// The evaluation-harness preset at the given scale.
    pub fn preset(scale: EvalScale) -> Self {
        match scale {
            EvalScale::Full => EstoreConfig::default(),
            EvalScale::Smoke => EstoreConfig {
                roots: 16,
                children_per_root: 2,
                servers: 3,
                clients: 12,
                run_for: SimDuration::from_secs(120),
                ..EstoreConfig::default()
            },
            EvalScale::Xl => EstoreConfig {
                roots: 512,
                children_per_root: 4,
                servers: 16,
                clients: 384,
                ..EstoreConfig::default()
            },
        }
    }

    /// The chaos-variant preset: an abort window swallows the EMR's first
    /// wave of rebalancing migrations mid-transfer (the retry-with-backoff
    /// path completes them), then every link degrades — added latency,
    /// halved bandwidth, 2% drop — before healing.
    pub fn chaos_preset(scale: EvalScale) -> Self {
        let faults = FaultPlan::new()
            .abort_migrations(SimTime::from_secs(25), SimDuration::from_secs(60), 8)
            .degrade_links(
                SimTime::from_secs(100),
                LinkDegradation {
                    extra_latency: SimDuration::from_millis(2),
                    bandwidth_factor: 0.5,
                    drop_per_mille: 20,
                },
                Some(SimDuration::from_secs(30)),
            );
        EstoreConfig {
            faults,
            seed: 37,
            ..EstoreConfig::preset(scale)
        }
    }
}

/// Results of one E-Store run.
#[derive(Debug)]
pub struct EstoreReport {
    /// Mean latency per second (Fig. 9's series).
    pub latency_series: BucketedSeries,
    /// Mean latency over the final third of the run.
    pub tail_ms: f64,
    /// Migrations performed.
    pub migrations: usize,
    /// Scenario-independent elasticity stats.
    pub eval: ElasticityEval,
    /// Recovery metrics (all zero on a fault-free run).
    pub chaos: ChaosEval,
}

struct RootPartition {
    children: Vec<ActorId>,
    read_work: f64,
    next: usize,
}

impl ActorLogic for RootPartition {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.read_work);
        if self.children.is_empty() {
            ctx.reply(256);
            return;
        }
        // Requests arriving at a root continue to one random child (§5.5);
        // we rotate deterministically, which is uniform in the limit.
        let child = self.children[self.next % self.children.len()];
        self.next += 1;
        ctx.send(child, "read", 128);
    }
}

struct ChildPartition {
    read_work: f64,
}

impl ActorLogic for ChildPartition {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.read_work);
        ctx.reply(512);
    }
}

/// A client drawing roots from the cascade-skew distribution.
struct EstoreClient {
    roots: Vec<ActorId>,
    weights: Vec<f64>,
    think: SimDuration,
}

impl EstoreClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let i = ctx.rng().weighted_index(&self.weights);
        ctx.request(self.roots[i], "read", 96);
    }
}

impl ClientLogic for EstoreClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(self.think, 0);
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

/// Cascade weights: root i gets `skew` of what remains after roots `0..i`.
pub fn cascade_weights(roots: usize, skew: f64) -> Vec<f64> {
    let mut weights = Vec::with_capacity(roots);
    let mut remaining = 1.0;
    for _ in 0..roots {
        let w = remaining * skew;
        weights.push(w);
        remaining -= w;
    }
    // The tail remainder spreads over the last root to keep a proper
    // distribution.
    if let Some(last) = weights.last_mut() {
        *last += remaining;
    }
    weights
}

/// The in-app E-Store elasticity manager: top-k% hot roots move (with their
/// children) from servers above the high watermark to the least-loaded
/// server; on a low watermark it rebalances the same way.
struct NativeEstore {
    high: f64,
    low: f64,
    top_fraction: f64,
}

impl ElasticityController for NativeEstore {
    fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
        let snapshot = rt.snapshot().clone();
        let servers = rt.cluster().running_ids();
        if servers.len() < 2 {
            return;
        }
        let usage = |sid: ServerId| snapshot.server(sid).map(|s| s.usage.cpu()).unwrap_or(0.0);
        let trigger = servers.iter().any(|&s| usage(s) > self.high)
            || servers.iter().any(|&s| usage(s) < self.low);
        if !trigger {
            return;
        }
        let hot = servers
            .iter()
            .copied()
            .max_by(|a, b| usage(*a).partial_cmp(&usage(*b)).expect("finite"))
            .expect("non-empty");
        let idle = servers
            .iter()
            .copied()
            .filter(|&s| s != hot)
            .min_by(|a, b| usage(*a).partial_cmp(&usage(*b)).expect("finite"))
            .expect("two servers");
        if usage(hot) - usage(idle) < 0.15 {
            return;
        }
        // Roots on the hot server ranked by received client calls.
        let mut roots: Vec<(ActorId, u64)> = snapshot
            .actors_on(hot)
            .filter(|a| !a.refs.get("children").map(Vec::is_empty).unwrap_or(true))
            .map(|a| (a.actor, a.counters.total_received()))
            .collect();
        roots.sort_by_key(|&(_, calls)| std::cmp::Reverse(calls));
        let k = ((roots.len() as f64 * self.top_fraction).ceil() as usize).max(1);
        for &(root, _) in roots.iter().take(k) {
            if rt.migrate(root, idle).is_ok() {
                // E-Store moves descendant tuples with their root ranges.
                for child in rt.actor_refs(root, "children") {
                    let _ = rt.migrate(child, idle);
                }
            }
        }
    }
}

/// Runs the E-Store experiment.
pub fn run(cfg: &EstoreConfig) -> EstoreReport {
    let runtime_cfg = RuntimeConfig {
        seed: cfg.seed,
        elasticity_period: cfg.period,
        min_residency: cfg.period,
        profile_window: SimDuration::from_secs(5),
        backend: cfg.backend,
        ..RuntimeConfig::default()
    };
    let mut app = match cfg.mode {
        Mode::Plasma => Plasma::builder()
            .runtime_config(runtime_cfg)
            .policy(policy(), &schema())
            .build()
            .expect("estore policy compiles"),
        Mode::Native => Plasma::builder()
            .runtime_config(runtime_cfg)
            .controller(Box::new(NativeEstore {
                high: 0.8,
                low: 0.5,
                top_fraction: 0.10,
            }))
            .build()
            .expect("builds"),
        Mode::None => Plasma::builder()
            .runtime_config(runtime_cfg)
            .build()
            .expect("builds"),
    };
    let rt = app.runtime_mut();
    rt.install_fault_plan(&cfg.faults, cfg.recovery);
    let servers: Vec<ServerId> = (0..cfg.servers)
        .map(|_| rt.add_server(InstanceType::m1_small()))
        .collect();
    // Elastic setups get one extra instance (§5.5).
    if cfg.mode != Mode::None {
        rt.add_server(InstanceType::m1_small());
    }
    let mut roots = Vec::with_capacity(cfg.roots);
    let mut children_of: BTreeMap<ActorId, Vec<ActorId>> = BTreeMap::new();
    for i in 0..cfg.roots {
        let home = servers[i % cfg.servers];
        let children: Vec<ActorId> = (0..cfg.children_per_root)
            .map(|_| {
                rt.spawn_actor(
                    "Partition",
                    Box::new(ChildPartition { read_work: 0.0012 }),
                    512 << 10,
                    home,
                )
            })
            .collect();
        let root = rt.spawn_actor(
            "Partition",
            Box::new(RootPartition {
                children: children.clone(),
                read_work: 0.0018,
                next: 0,
            }),
            256 << 10,
            home,
        );
        for &c in &children {
            rt.actor_add_ref(root, "children", c);
        }
        children_of.insert(root, children);
        roots.push(root);
    }
    let weights = cascade_weights(cfg.roots, cfg.skew);
    for _ in 0..cfg.clients {
        rt.add_client(Box::new(EstoreClient {
            roots: roots.clone(),
            weights: weights.clone(),
            think: SimDuration::from_millis(50),
        }));
    }
    let end = SimTime::ZERO + cfg.run_for;
    app.run_until(end);
    let report = app.report();
    let buckets = report.latency_series.buckets();
    let tail_start = SimTime::ZERO + cfg.run_for.mul_f64(0.66);
    let tail: Vec<f64> = buckets
        .iter()
        .filter(|&&(t, _)| t >= tail_start)
        .map(|&(_, v)| v)
        .collect();
    EstoreReport {
        tail_ms: if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        },
        migrations: report.migrations.len(),
        latency_series: report.latency_series.clone(),
        eval: ElasticityEval::collect(app.runtime()),
        chaos: ChaosEval::collect(app.runtime()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_weights_sum_to_one_and_decay() {
        let w = cascade_weights(40, 0.35);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w[0] - 0.35).abs() < 1e-12);
        assert!((w[1] - 0.35 * 0.65).abs() < 1e-12);
    }

    #[test]
    fn both_elastic_modes_beat_no_elasticity() {
        let plasma = run(&EstoreConfig::default());
        let native = run(&EstoreConfig {
            mode: Mode::Native,
            ..EstoreConfig::default()
        });
        let none = run(&EstoreConfig {
            mode: Mode::None,
            ..EstoreConfig::default()
        });
        assert!(plasma.migrations > 0);
        assert!(native.migrations > 0);
        assert!(
            plasma.tail_ms < none.tail_ms * 0.9,
            "plasma {} vs none {}",
            plasma.tail_ms,
            none.tail_ms
        );
        assert!(
            native.tail_ms < none.tail_ms * 0.9,
            "native {} vs none {}",
            native.tail_ms,
            none.tail_ms
        );
    }

    #[test]
    fn plasma_matches_native_estore() {
        let plasma = run(&EstoreConfig::default());
        let native = run(&EstoreConfig {
            mode: Mode::Native,
            ..EstoreConfig::default()
        });
        let ratio = plasma.tail_ms / native.tail_ms;
        assert!(
            (0.75..1.35).contains(&ratio),
            "PLASMA E-Store should track in-app E-Store: ratio {ratio} ({} vs {})",
            plasma.tail_ms,
            native.tail_ms
        );
    }
}
