//! Shared building blocks for the application suite.

use plasma::prelude::*;

/// A generic CPU-burning actor: `work` units per request, then a reply.
pub struct WorkActor {
    /// CPU work per request, in work units.
    pub work: f64,
    /// Reply payload size in bytes.
    pub reply_bytes: u64,
}

impl ActorLogic for WorkActor {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(self.reply_bytes);
    }
}

/// An open-loop client: one request to `target` every `period`, forever.
pub struct Pulse {
    /// Request destination.
    pub target: ActorId,
    /// Invoked function name.
    pub fname: &'static str,
    /// Request payload size.
    pub bytes: u64,
    /// Inter-request period.
    pub period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, self.fname, self.bytes);
        ctx.set_timer(self.period, 0);
    }
}

/// A closed-loop client: next request fires when the reply lands (after an
/// optional think time), up to `max_requests`.
pub struct ClosedLoop {
    /// Request destination.
    pub target: ActorId,
    /// Invoked function name.
    pub fname: &'static str,
    /// Request payload size.
    pub bytes: u64,
    /// Pause between reply and next request.
    pub think: SimDuration,
    /// Total requests to issue (`u64::MAX` for unbounded).
    pub max_requests: u64,
    /// Requests issued so far.
    pub sent: u64,
}

impl ClosedLoop {
    /// Creates an unbounded closed-loop client with zero think time.
    pub fn saturating(target: ActorId, fname: &'static str, bytes: u64) -> Self {
        ClosedLoop {
            target,
            fname,
            bytes,
            think: SimDuration::ZERO,
            max_requests: u64::MAX,
            sent: 0,
        }
    }
}

impl ClientLogic for ClosedLoop {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        if self.max_requests > 0 {
            self.sent += 1;
            ctx.request(self.target, self.fname, self.bytes);
        }
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        if self.sent < self.max_requests {
            if self.think.is_zero() {
                self.sent += 1;
                ctx.request(self.target, self.fname, self.bytes);
            } else {
                ctx.set_timer(self.think, 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, token: u64) {
        if token == 1 && self.sent < self.max_requests {
            self.sent += 1;
            ctx.request(self.target, self.fname, self.bytes);
        }
    }
}

/// Splits `total` items as evenly as possible over `k` buckets
/// (first `total % k` buckets get one extra).
pub fn spread(total: usize, k: usize) -> Vec<usize> {
    let base = total / k;
    let extra = total % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_fair_and_total() {
        assert_eq!(spread(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(spread(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(spread(3, 5), vec![1, 1, 1, 0, 0]);
        assert_eq!(spread(10, 4).iter().sum::<usize>(), 10);
    }

    #[test]
    fn closed_loop_respects_max() {
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 1,
            ..RuntimeConfig::default()
        });
        let s = rt.add_server(InstanceType::m1_small());
        let worker = rt.spawn_actor(
            "W",
            Box::new(WorkActor {
                work: 0.001,
                reply_bytes: 8,
            }),
            64,
            s,
        );
        rt.add_client(Box::new(ClosedLoop {
            target: worker,
            fname: "run",
            bytes: 32,
            think: SimDuration::from_millis(5),
            max_requests: 7,
            sent: 0,
        }));
        rt.run_until(SimTime::from_secs(10));
        assert_eq!(rt.report().requests, 7);
        assert_eq!(rt.report().replies, 7);
    }

    #[test]
    fn pulse_is_open_loop() {
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 1,
            ..RuntimeConfig::default()
        });
        let s = rt.add_server(InstanceType::m1_small());
        let worker = rt.spawn_actor(
            "W",
            Box::new(WorkActor {
                work: 0.5, // Heavily backlogged on purpose.
                reply_bytes: 8,
            }),
            64,
            s,
        );
        rt.add_client(Box::new(Pulse {
            target: worker,
            fname: "run",
            bytes: 32,
            period: SimDuration::from_millis(100),
        }));
        rt.run_until(SimTime::from_secs(10));
        // Open loop keeps sending even though replies lag far behind.
        assert!(rt.report().requests >= 99);
        assert!(rt.report().replies < 25);
    }
}
