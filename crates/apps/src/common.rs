//! Shared building blocks for the application suite.

use plasma::prelude::*;
use plasma_sim::metrics::Summary;

/// Workload scale preset for the evaluation harness.
///
/// Every §5 scenario exposes `Config::preset(scale)` so the same code path
/// serves both the full paper-shaped run and a reduced CI smoke run; only
/// the sizing constants differ, never the logic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalScale {
    /// CI-sized: small actor counts and short runs, finishes in seconds.
    Smoke,
    /// Paper-shaped defaults (§5 parameters, possibly trimmed run length).
    Full,
    /// Beyond-paper stress sizing (≥128 servers / ≥50k actors for the
    /// eval-engine scenario); exercised on demand, not in CI's hot path.
    Xl,
}

impl EvalScale {
    /// Parses `"smoke"` / `"full"` / `"xl"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(EvalScale::Smoke),
            "full" => Some(EvalScale::Full),
            "xl" => Some(EvalScale::Xl),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EvalScale::Smoke => "smoke",
            EvalScale::Full => "full",
            EvalScale::Xl => "xl",
        }
    }
}

/// Scenario-independent elasticity measurements of one finished run.
///
/// Collected from the run report and cluster just before a scenario tears
/// its runtime down; the evaluation harness serializes these per scenario.
/// All values derive from simulated time and deterministic counters, so
/// same-seed runs produce bit-identical stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct ElasticityEval {
    /// Simulated length of the run in seconds.
    pub run_secs: f64,
    /// Client requests issued.
    pub requests: u64,
    /// Client replies delivered.
    pub replies: u64,
    /// Replies per simulated second.
    pub throughput_rps: f64,
    /// Inter-actor messages delivered (local + remote).
    pub delivered_messages: u64,
    /// Inter-actor messages per simulated second.
    pub message_throughput_per_s: f64,
    /// Fraction of inter-actor messages that stayed on-server.
    pub locality: f64,
    /// Actor migrations that completed.
    pub migrations_completed: u64,
    /// EMR migrations admitted by the QUERY/QREPLY handshake.
    pub emr_admitted: u64,
    /// EMR actions rejected (admission control or runtime guards).
    pub emr_rejected: u64,
    /// EMR elasticity rounds ticked.
    pub emr_ticks: u64,
    /// Cluster scale-out events.
    pub scale_outs: u64,
    /// Cluster scale-in events.
    pub scale_ins: u64,
    /// Mean simulated LEM→GEM→LEM decision latency, milliseconds.
    pub decision_latency_ms_mean: f64,
    /// Worst simulated decision latency, milliseconds.
    pub decision_latency_ms_max: f64,
    /// Simulated time of the last completed migration, seconds (0 when the
    /// run never migrated). With hotspots present from the start of every
    /// scenario, this is the time-to-rebalance after hotspot onset.
    pub time_to_rebalance_s: f64,
    /// End-state balance score in `[0, 1]`: 1 minus the relative CPU spread
    /// across running servers at the end of the run, floored at 0. An idle
    /// or perfectly even cluster scores 1.
    pub balance_score: f64,
    /// Elasticity decisions (grow/shrink/migrate) the runtime recorded.
    pub decisions_total: u64,
    /// FNV-1a digest of the decision sequence, order-sensitive but
    /// timestamp-free: sim and live runs of the same seed must agree.
    pub decision_digest: u64,
    /// EMR rounds whose apply phase saw a newer profiling generation than
    /// the one it planned against.
    pub snapshot_skew_rounds: u64,
    /// Decision rounds whose evaluation frame was rebuilt from scratch.
    pub frame_rebuilds: u64,
    /// Decision rounds whose retained evaluation frame was patched in place
    /// from snapshot deltas.
    pub frame_patches: u64,
    /// Backend-clock nanoseconds spent patching frames (identically 0
    /// under the sim backend; host-dependent under live).
    pub frame_patch_ns: u64,
    /// Mean carrier transport latency per sampled delivery, ns: wall-clock
    /// channel latency under live, deterministic injected chaos delay
    /// under net, identically 0 under sim.
    pub backend_channel_mean_ns: f64,
    /// Worst sampled carrier transport latency, ns.
    pub backend_channel_max_ns: u64,
    /// Wire frames the coordinator wrote (net backend only; 0 otherwise).
    pub backend_frames_sent: u64,
    /// Wire frames the coordinator read back (net backend only).
    pub backend_frames_received: u64,
    /// Wire bytes the coordinator wrote (net backend only).
    pub backend_wire_bytes_sent: u64,
    /// Wire bytes the coordinator read back (net backend only).
    pub backend_wire_bytes_received: u64,
    /// Most frames ever outstanding between carrier barriers (net only).
    pub backend_max_inflight: u64,
    /// GEM control queries sent over the carrier (one per GEM per round).
    pub control_queries: u64,
    /// QREPLY candidate batches carried back (one per carrier partition
    /// holding in-scope servers: 1 under sim, per-server under live,
    /// per-group under net).
    pub control_replies: u64,
    /// Wire bytes of QUERY/QREPLY/DECISION control frames (net only).
    pub control_wire_bytes: u64,
}

impl ElasticityEval {
    /// Collects the stats from a finished runtime.
    pub fn collect(rt: &Runtime) -> Self {
        let report = rt.report();
        let backend = rt.backend_stats();
        let run_secs = rt.now().as_secs_f64();
        let per_sec = |n: u64| {
            if run_secs > 0.0 {
                n as f64 / run_secs
            } else {
                0.0
            }
        };
        let delivered = report.local_messages + report.remote_messages;
        let decision = report
            .series("emr.decision_latency_ms")
            .map(|s| Summary::of(&s.points().iter().map(|&(_, v)| v).collect::<Vec<f64>>()))
            .unwrap_or_default();
        // End-state CPU across servers still running: last sample of each
        // running server's utilization series.
        let running = rt.cluster().running_ids();
        let final_cpu: Vec<f64> = running
            .iter()
            .filter_map(|sid| report.server_cpu.get(sid).and_then(|ts| ts.last()))
            .collect();
        let cpu = Summary::of(&final_cpu);
        let balance_score = if cpu.count == 0 || cpu.mean < 0.02 {
            // An idle (or unprofiled) cluster is trivially balanced.
            1.0
        } else {
            (1.0 - cpu.relative_spread()).max(0.0)
        };
        ElasticityEval {
            run_secs,
            requests: report.requests,
            replies: report.replies,
            throughput_rps: per_sec(report.replies),
            delivered_messages: delivered,
            message_throughput_per_s: per_sec(delivered),
            locality: report.locality(),
            migrations_completed: report.migrations.len() as u64,
            emr_admitted: report.scalar("emr.admitted").unwrap_or(0.0) as u64,
            emr_rejected: report.scalar("emr.rejected").unwrap_or(0.0) as u64,
            emr_ticks: report.scalar("emr.ticks").unwrap_or(0.0) as u64,
            scale_outs: report.scalar("emr.scale_outs").unwrap_or(0.0) as u64,
            scale_ins: report.scalar("emr.scale_ins").unwrap_or(0.0) as u64,
            decision_latency_ms_mean: decision.mean,
            decision_latency_ms_max: decision.max,
            time_to_rebalance_s: report
                .migrations
                .last()
                .map(|m| m.at.as_secs_f64())
                .unwrap_or(0.0),
            balance_score,
            decisions_total: report.decisions.len() as u64,
            decision_digest: report.decision_digest(),
            snapshot_skew_rounds: report.scalar("emr.snapshot_skew_rounds").unwrap_or(0.0) as u64,
            frame_rebuilds: report.scalar("emr.frame_rebuilds").unwrap_or(0.0) as u64,
            frame_patches: report.scalar("emr.frame_patches").unwrap_or(0.0) as u64,
            frame_patch_ns: report.scalar("emr.frame_patch_ns").unwrap_or(0.0) as u64,
            backend_channel_mean_ns: backend.channel_latency_us_mean() * 1e3,
            backend_channel_max_ns: backend.channel_ns_max,
            backend_frames_sent: backend.frames_sent,
            backend_frames_received: backend.frames_received,
            backend_wire_bytes_sent: backend.wire_bytes_sent,
            backend_wire_bytes_received: backend.wire_bytes_received,
            backend_max_inflight: backend.max_inflight_frames,
            control_queries: backend.control_queries,
            control_replies: backend.control_replies,
            control_wire_bytes: backend.control_wire_bytes,
        }
    }
}

/// Recovery measurements of one finished chaos run.
///
/// Collected from the `chaos.*` report scalars the runtime exports when a
/// fault plan is installed. All values derive from simulated time and
/// deterministic counters, so same-seed runs produce bit-identical stats.
/// Collecting from a fault-free run yields all zeros.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosEval {
    /// Faults injected from the plan.
    pub faults_injected: u64,
    /// Servers crash-stopped.
    pub servers_crashed: u64,
    /// Crashed servers that rebooted.
    pub servers_restarted: u64,
    /// Actors that lost their hosting server.
    pub actors_lost: u64,
    /// Orphaned actors respawned elsewhere (or in place on restart).
    pub actors_recovered: u64,
    /// Actor state bytes lost to crashes.
    pub state_bytes_lost: u64,
    /// Messages lost to crashes, partitions, and degraded links combined.
    pub messages_lost: u64,
    /// Migrations aborted mid-transfer.
    pub migrations_aborted: u64,
    /// Migration retry attempts issued by the recovery policy.
    pub migration_retries: u64,
    /// Server deaths detected by the heartbeat sweep.
    pub detections: u64,
    /// Mean crash-to-detection latency, seconds.
    pub time_to_detect_s_mean: f64,
    /// Worst crash-to-detection latency, seconds.
    pub time_to_detect_s_max: f64,
    /// Summed per-recovery unavailability window, seconds.
    pub unavailability_s_sum: f64,
    /// Longest single unavailability window, seconds.
    pub unavailability_s_max: f64,
    /// Simulated time of the first server crash, seconds (0 if none).
    pub first_crash_at_s: f64,
    /// Time from the first crash to the last migration completing at or
    /// after it, seconds — how long the cluster kept re-balancing after
    /// the fault (0 when nothing crashed or nothing moved afterwards).
    pub time_to_rebalance_after_crash_s: f64,
}

impl ChaosEval {
    /// Collects the stats from a finished runtime.
    pub fn collect(rt: &Runtime) -> Self {
        let report = rt.report();
        let scalar = |k: &str| report.scalar(k).unwrap_or(0.0);
        let count = |k: &str| scalar(k) as u64;
        let first_crash_at_s = scalar("chaos.first_crash_at_s");
        let crashed = count("chaos.servers_crashed") > 0;
        let rebalance = if crashed {
            report
                .migrations
                .iter()
                .map(|m| m.at.as_secs_f64() - first_crash_at_s)
                .filter(|&dt| dt >= 0.0)
                .fold(0.0, f64::max)
        } else {
            0.0
        };
        ChaosEval {
            faults_injected: count("chaos.faults_injected"),
            servers_crashed: count("chaos.servers_crashed"),
            servers_restarted: count("chaos.servers_restarted"),
            actors_lost: count("chaos.actors_lost"),
            actors_recovered: count("chaos.actors_recovered"),
            state_bytes_lost: count("chaos.state_bytes_lost"),
            messages_lost: count("chaos.messages_lost_crash")
                + count("chaos.messages_lost_partition")
                + count("chaos.messages_dropped_link"),
            migrations_aborted: count("chaos.migrations_aborted"),
            migration_retries: count("chaos.migration_retries"),
            detections: count("chaos.detections"),
            time_to_detect_s_mean: scalar("chaos.detect_latency_mean_s"),
            time_to_detect_s_max: scalar("chaos.detect_latency_max_s"),
            unavailability_s_sum: scalar("chaos.unavailability_sum_s"),
            unavailability_s_max: scalar("chaos.unavailability_max_s"),
            first_crash_at_s,
            time_to_rebalance_after_crash_s: rebalance,
        }
    }
}

/// A generic CPU-burning actor: `work` units per request, then a reply.
pub struct WorkActor {
    /// CPU work per request, in work units.
    pub work: f64,
    /// Reply payload size in bytes.
    pub reply_bytes: u64,
}

impl ActorLogic for WorkActor {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(self.reply_bytes);
    }
}

/// An open-loop client: one request to `target` every `period`, forever.
pub struct Pulse {
    /// Request destination.
    pub target: ActorId,
    /// Invoked function name.
    pub fname: &'static str,
    /// Request payload size.
    pub bytes: u64,
    /// Inter-request period.
    pub period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, self.fname, self.bytes);
        ctx.set_timer(self.period, 0);
    }
}

/// A closed-loop client: next request fires when the reply lands (after an
/// optional think time), up to `max_requests`.
pub struct ClosedLoop {
    /// Request destination.
    pub target: ActorId,
    /// Invoked function name.
    pub fname: &'static str,
    /// Request payload size.
    pub bytes: u64,
    /// Pause between reply and next request.
    pub think: SimDuration,
    /// Total requests to issue (`u64::MAX` for unbounded).
    pub max_requests: u64,
    /// Requests issued so far.
    pub sent: u64,
}

impl ClosedLoop {
    /// Creates an unbounded closed-loop client with zero think time.
    pub fn saturating(target: ActorId, fname: &'static str, bytes: u64) -> Self {
        ClosedLoop {
            target,
            fname,
            bytes,
            think: SimDuration::ZERO,
            max_requests: u64::MAX,
            sent: 0,
        }
    }
}

impl ClientLogic for ClosedLoop {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        if self.max_requests > 0 {
            self.sent += 1;
            ctx.request(self.target, self.fname, self.bytes);
        }
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        if self.sent < self.max_requests {
            if self.think.is_zero() {
                self.sent += 1;
                ctx.request(self.target, self.fname, self.bytes);
            } else {
                ctx.set_timer(self.think, 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, token: u64) {
        if token == 1 && self.sent < self.max_requests {
            self.sent += 1;
            ctx.request(self.target, self.fname, self.bytes);
        }
    }
}

/// Splits `total` items as evenly as possible over `k` buckets
/// (first `total % k` buckets get one extra).
pub fn spread(total: usize, k: usize) -> Vec<usize> {
    let base = total / k;
    let extra = total % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_fair_and_total() {
        assert_eq!(spread(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(spread(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(spread(3, 5), vec![1, 1, 1, 0, 0]);
        assert_eq!(spread(10, 4).iter().sum::<usize>(), 10);
    }

    #[test]
    fn closed_loop_respects_max() {
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 1,
            ..RuntimeConfig::default()
        });
        let s = rt.add_server(InstanceType::m1_small());
        let worker = rt.spawn_actor(
            "W",
            Box::new(WorkActor {
                work: 0.001,
                reply_bytes: 8,
            }),
            64,
            s,
        );
        rt.add_client(Box::new(ClosedLoop {
            target: worker,
            fname: "run",
            bytes: 32,
            think: SimDuration::from_millis(5),
            max_requests: 7,
            sent: 0,
        }));
        rt.run_until(SimTime::from_secs(10));
        assert_eq!(rt.report().requests, 7);
        assert_eq!(rt.report().replies, 7);
    }

    #[test]
    fn pulse_is_open_loop() {
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 1,
            ..RuntimeConfig::default()
        });
        let s = rt.add_server(InstanceType::m1_small());
        let worker = rt.spawn_actor(
            "W",
            Box::new(WorkActor {
                work: 0.5, // Heavily backlogged on purpose.
                reply_bytes: 8,
            }),
            64,
            s,
        );
        rt.add_client(Box::new(Pulse {
            target: worker,
            fname: "run",
            bytes: 32,
            period: SimDuration::from_millis(100),
        }));
        rt.run_until(SimTime::from_secs(10));
        // Open loop keeps sending even though replies lag far behind.
        assert!(rt.report().requests >= 99);
        assert!(rt.report().replies < 25);
    }
}
