#![warn(missing_docs)]

//! Deterministic fault injection for the PLASMA workspace.
//!
//! The paper's fault-tolerance argument (§4.3: GEM crash-stop with server
//! re-shuffling and majority-vote scaling) only matters if failures actually
//! happen. This crate describes *what* fails and *when* — the runtime in
//! `plasma-actor` turns the description into first-class simulation events,
//! so a fault plan replays bit-for-bit under a fixed seed like everything
//! else in the workspace.
//!
//! Three pieces:
//!
//! - [`FaultPlan`]: a declarative, time-sorted schedule of [`FaultKind`]s —
//!   server crash-stop (with optional restart), network partitions between
//!   server groups, link degradation, migration aborts, GEM/LEM crashes and
//!   provisioner stalls. An empty plan is the no-fault hot path: installing
//!   it is a no-op and changes nothing about a run.
//! - [`RecoveryPolicy`]: how the runtime detects and repairs damage —
//!   heartbeat-based failure detection, actor respawn via the directory
//!   (with state-loss accounting), and migration retry with exponential
//!   backoff.
//! - [`ChaosStats`]: counters every fault and recovery step increments,
//!   exported as `chaos.*` scalars and folded into the recovery metrics the
//!   chaos evaluation scenarios gate on (time-to-detect, unavailability
//!   window, lost/retried messages).

pub mod fault;
pub mod recovery;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use recovery::{ChaosStats, RecoveryPolicy};

// The degradation parameters live with the partition state in
// `plasma-cluster` (the layer that owns the network); re-exported here so
// fault plans can be built from this crate alone.
pub use plasma_cluster::LinkDegradation;
