//! Recovery policy and chaos accounting.

use plasma_sim::SimDuration;

/// How the runtime detects failures and repairs the damage.
///
/// Detection is heartbeat-based, as in the paper's GEM protocol: the
/// failure detector fires every `heartbeat_period`; a crashed server is
/// declared dead once `heartbeat_timeout` has elapsed since its crash (the
/// missed-heartbeat budget). Recovery then respawns the orphaned actors via
/// the directory — their state is lost and accounted — and aborted
/// migrations retry with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Failure-detector period.
    pub heartbeat_period: SimDuration,
    /// Silence after which a crashed server is declared dead.
    pub heartbeat_timeout: SimDuration,
    /// Whether orphaned actors respawn on surviving servers.
    pub respawn: bool,
    /// How many times an aborted migration retries before giving up.
    pub migration_retry_limit: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub migration_retry_backoff: SimDuration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            heartbeat_period: SimDuration::from_secs(5),
            heartbeat_timeout: SimDuration::from_secs(10),
            respawn: true,
            migration_retry_limit: 3,
            migration_retry_backoff: SimDuration::from_secs(2),
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry number `attempt` (1-based), doubling each time.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << attempt.saturating_sub(1).min(16);
        SimDuration::from_micros(
            self.migration_retry_backoff
                .as_micros()
                .saturating_mul(factor),
        )
    }
}

/// Counters incremented by every fault and recovery step.
///
/// Exported by the runtime as `chaos.*` report scalars; the chaos
/// evaluation scenarios fold them into their recovery metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosStats {
    /// Faults taken from the plan and injected.
    pub faults_injected: u64,
    /// Servers crash-stopped.
    pub servers_crashed: u64,
    /// Crashed servers that came back via restart.
    pub servers_restarted: u64,
    /// Actors resident on a server when it crashed.
    pub actors_lost: u64,
    /// Orphaned actors respawned (elsewhere or in place).
    pub actors_recovered: u64,
    /// Actor state bytes lost to crashes.
    pub state_bytes_lost: u64,
    /// Messages dropped because their target sat on a crashed server
    /// (queued mailbox entries plus later arrivals).
    pub messages_lost_crash: u64,
    /// Messages dropped on severed links.
    pub messages_lost_partition: u64,
    /// Messages dropped by probabilistic link degradation.
    pub messages_dropped_link: u64,
    /// Migrations aborted (injected, or collateral of a crash).
    pub migrations_aborted: u64,
    /// Migration retry attempts issued.
    pub migration_retries: u64,
    /// Forced early profiling-window closes injected (snapshot skew).
    pub snapshot_skews: u64,
    /// Servers declared dead by the failure detector.
    pub detections: u64,
    /// Sum of crash-to-detection latencies, seconds.
    pub detect_latency_sum_s: f64,
    /// Worst crash-to-detection latency, seconds.
    pub detect_latency_max_s: f64,
    /// Sum of per-server unavailability windows (crash to recovery of its
    /// actors), seconds.
    pub unavailability_sum_s: f64,
    /// Worst per-server unavailability window, seconds.
    pub unavailability_max_s: f64,
    /// Instant of the first server crash, seconds (when one happened).
    pub first_crash_at_s: Option<f64>,
}

impl ChaosStats {
    /// Mean crash-to-detection latency in seconds (0 when none).
    pub fn detect_latency_mean_s(&self) -> f64 {
        if self.detections == 0 {
            0.0
        } else {
            self.detect_latency_sum_s / self.detections as f64
        }
    }

    /// Records one detection latency.
    pub fn record_detection(&mut self, latency_s: f64) {
        self.detections += 1;
        self.detect_latency_sum_s += latency_s;
        if latency_s > self.detect_latency_max_s {
            self.detect_latency_max_s = latency_s;
        }
    }

    /// Records one server's unavailability window.
    pub fn record_unavailability(&mut self, window_s: f64) {
        self.unavailability_sum_s += window_s;
        if window_s > self.unavailability_max_s {
            self.unavailability_max_s = window_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = RecoveryPolicy::default();
        assert!(p.heartbeat_timeout >= p.heartbeat_period);
        assert!(p.respawn);
        assert!(p.migration_retry_limit > 0);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff_for(1), SimDuration::from_secs(2));
        assert_eq!(p.backoff_for(2), SimDuration::from_secs(4));
        assert_eq!(p.backoff_for(3), SimDuration::from_secs(8));
    }

    #[test]
    fn stats_aggregate_detection_and_unavailability() {
        let mut s = ChaosStats::default();
        s.record_detection(2.0);
        s.record_detection(6.0);
        assert_eq!(s.detections, 2);
        assert!((s.detect_latency_mean_s() - 4.0).abs() < 1e-12);
        assert_eq!(s.detect_latency_max_s, 6.0);
        s.record_unavailability(3.0);
        s.record_unavailability(1.0);
        assert_eq!(s.unavailability_max_s, 3.0);
        assert!((s.unavailability_sum_s - 4.0).abs() < 1e-12);
    }
}
