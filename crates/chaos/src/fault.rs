//! The fault vocabulary and the declarative, time-sorted fault plan.

use plasma_cluster::{LinkDegradation, ServerId};
use plasma_sim::{SimDuration, SimTime};

/// One kind of injectable fault.
///
/// Every variant is a crash-stop or omission fault: components stop or
/// messages disappear, but nothing behaves byzantinely — matching the
/// paper's §4.3 failure model extended from GEMs to the whole substrate.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Crash-stop a server: resident actors lose their state, queued and
    /// in-flight messages to them are dropped, in-flight migrations
    /// involving the server abort. With `restart_after` the server reboots
    /// (empty) that long after the crash.
    ServerCrash {
        /// The server to crash.
        server: ServerId,
        /// Delay until an automatic reboot, if any.
        restart_after: Option<SimDuration>,
    },
    /// Sever all links between `group` and the rest of the cluster.
    Partition {
        /// Servers on one side of the partition.
        group: Vec<ServerId>,
        /// Delay until the partition heals, if ever.
        heal_after: Option<SimDuration>,
    },
    /// Heal every active partition.
    HealPartitions,
    /// Degrade every inter-server link: added latency, a bandwidth
    /// multiplier and a probabilistic message drop.
    LinkDegrade {
        /// The degradation parameters.
        degradation: LinkDegradation,
        /// Delay until links recover, if ever.
        heal_after: Option<SimDuration>,
    },
    /// Clear any active link degradation.
    HealLinks,
    /// Abort migrations mid-transfer: up to `max` migrations whose
    /// transfer completes within `window` of the injection instant fail on
    /// arrival, returning the actor to its source (and entering the
    /// retry-with-backoff path of the recovery policy).
    MigrationAbort {
        /// How long the abort window stays open.
        window: SimDuration,
        /// Maximum number of migrations to abort.
        max: u32,
    },
    /// Crash-stop one GEM (by index); its servers re-shuffle onto the
    /// surviving GEMs per §4.3.
    GemCrash {
        /// Index of the GEM to crash.
        gem: usize,
    },
    /// Crash the LEM on one server: the profiling window in progress there
    /// is lost (counters reset), as if the monitor process restarted.
    LemCrash {
        /// Server whose LEM crashes.
        server: ServerId,
    },
    /// Stall the provisioner: server requests fail for the duration.
    ProvisionerStall {
        /// How long requests keep failing.
        duration: SimDuration,
    },
    /// Force an early profiling-window close, so a snapshot generation
    /// rolls between an elasticity round's *planning* and its *apply*
    /// (which happen a control round-trip apart). EMR apply paths must
    /// tolerate this skew — §4.3's "window closing mid-apply" hazard —
    /// and count it (`emr.snapshot_skew_rounds`) rather than acting on
    /// assumptions from the stale snapshot.
    SnapshotSkew,
}

impl FaultKind {
    /// Short stable label used in trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ServerCrash { .. } => "server-crash",
            FaultKind::Partition { .. } => "partition",
            FaultKind::HealPartitions => "heal-partitions",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::HealLinks => "heal-links",
            FaultKind::MigrationAbort { .. } => "migration-abort",
            FaultKind::GemCrash { .. } => "gem-crash",
            FaultKind::LemCrash { .. } => "lem-crash",
            FaultKind::ProvisionerStall { .. } => "provisioner-stall",
            FaultKind::SnapshotSkew => "snapshot-skew",
        }
    }

    /// The server this fault primarily concerns, when there is one.
    pub fn subject_server(&self) -> Option<ServerId> {
        match self {
            FaultKind::ServerCrash { server, .. } | FaultKind::LemCrash { server } => Some(*server),
            _ => None,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative fault schedule.
///
/// Faults are appended in any order; [`FaultPlan::schedule`] returns them
/// sorted by time (stably, so same-instant faults keep insertion order).
/// The empty plan is the identity: installing it changes nothing about a
/// run, which the no-fault byte-identity tests pin.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Appends a fault.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Schedules a server crash, optionally rebooting after a delay.
    pub fn crash_server(
        self,
        at: SimTime,
        server: ServerId,
        restart_after: Option<SimDuration>,
    ) -> Self {
        self.with(
            at,
            FaultKind::ServerCrash {
                server,
                restart_after,
            },
        )
    }

    /// Schedules a partition of `group` from the rest of the cluster.
    pub fn partition(
        self,
        at: SimTime,
        group: impl IntoIterator<Item = ServerId>,
        heal_after: Option<SimDuration>,
    ) -> Self {
        self.with(
            at,
            FaultKind::Partition {
                group: group.into_iter().collect(),
                heal_after,
            },
        )
    }

    /// Schedules uniform link degradation.
    pub fn degrade_links(
        self,
        at: SimTime,
        degradation: LinkDegradation,
        heal_after: Option<SimDuration>,
    ) -> Self {
        self.with(
            at,
            FaultKind::LinkDegrade {
                degradation,
                heal_after,
            },
        )
    }

    /// Schedules a migration-abort window.
    pub fn abort_migrations(self, at: SimTime, window: SimDuration, max: u32) -> Self {
        self.with(at, FaultKind::MigrationAbort { window, max })
    }

    /// Schedules a GEM crash.
    pub fn crash_gem(self, at: SimTime, gem: usize) -> Self {
        self.with(at, FaultKind::GemCrash { gem })
    }

    /// Schedules a LEM crash on `server`.
    pub fn crash_lem(self, at: SimTime, server: ServerId) -> Self {
        self.with(at, FaultKind::LemCrash { server })
    }

    /// Schedules a provisioner stall.
    pub fn stall_provisioner(self, at: SimTime, duration: SimDuration) -> Self {
        self.with(at, FaultKind::ProvisionerStall { duration })
    }

    /// Schedules a forced early profiling-window close (snapshot skew).
    /// Inject it between an elasticity tick and its apply instant (one
    /// control round-trip later) to exercise the plan/apply skew path.
    pub fn skew_snapshot(self, at: SimTime) -> Self {
        self.with(at, FaultKind::SnapshotSkew)
    }

    /// The faults in insertion order (unsorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The faults sorted by injection time (stable for equal instants).
    pub fn schedule(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.schedule().is_empty());
    }

    #[test]
    fn schedule_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .crash_gem(SimTime::from_secs(30), 1)
            .crash_server(SimTime::from_secs(10), ServerId(0), None)
            .crash_gem(SimTime::from_secs(30), 0)
            .stall_provisioner(SimTime::from_secs(20), SimDuration::from_secs(5));
        let schedule = plan.schedule();
        let times: Vec<u64> = schedule.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![10_000_000, 20_000_000, 30_000_000, 30_000_000]);
        // Same-instant faults keep insertion order (gem 1 before gem 0).
        assert_eq!(schedule[2].kind, FaultKind::GemCrash { gem: 1 });
        assert_eq!(schedule[3].kind, FaultKind::GemCrash { gem: 0 });
        // The plan itself stays in insertion order.
        assert_eq!(plan.events()[0].kind, FaultKind::GemCrash { gem: 1 });
    }

    #[test]
    fn labels_are_stable() {
        let kinds = [
            FaultKind::ServerCrash {
                server: ServerId(0),
                restart_after: None,
            },
            FaultKind::Partition {
                group: vec![ServerId(0)],
                heal_after: None,
            },
            FaultKind::HealPartitions,
            FaultKind::LinkDegrade {
                degradation: LinkDegradation::default(),
                heal_after: None,
            },
            FaultKind::HealLinks,
            FaultKind::MigrationAbort {
                window: SimDuration::from_secs(1),
                max: 1,
            },
            FaultKind::GemCrash { gem: 0 },
            FaultKind::LemCrash {
                server: ServerId(0),
            },
            FaultKind::ProvisionerStall {
                duration: SimDuration::from_secs(1),
            },
            FaultKind::SnapshotSkew,
        ];
        let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        let mut unique = labels.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "labels are distinct");
        assert_eq!(kinds[0].subject_server(), Some(ServerId(0)));
        assert_eq!(kinds[2].subject_server(), None);
    }
}
