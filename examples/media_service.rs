//! The Media Service under a daily load wave: clients join, watch and
//! review movies, then leave; the EMR grows and shrinks the cluster
//! following the six-rule policy of §3.3.
//!
//! ```sh
//! cargo run --release --example media_service
//! ```

use plasma_apps::media::{run, MediaConfig};
use plasma_sim::SimDuration;

fn main() {
    let cfg = MediaConfig {
        clients: 64,
        max_servers: 40,
        period: SimDuration::from_secs(60),
        ..MediaConfig::default()
    };
    println!(
        "Media Service: {} clients joining around t={}s, leaving around t={}s\n",
        cfg.clients,
        cfg.join_mean.as_secs_f64(),
        cfg.leave_mean.as_secs_f64()
    );
    println!("policy:\n{}\n", plasma_apps::media::policy());
    let report = run(&cfg);
    println!("timeline (10s buckets):");
    println!("{:>8} {:>12} {:>9}", "time", "latency", "servers");
    let mut server_iter = report.server_series.iter().peekable();
    let mut current_servers = 4.0;
    for &(t, lat) in report.latency_series.iter().step_by(6) {
        while let Some(&&(st, sv)) = server_iter.peek() {
            if st <= t {
                current_servers = sv;
                server_iter.next();
            } else {
                break;
            }
        }
        println!("{t:>7.0}s {lat:>10.1}ms {current_servers:>9.0}");
    }
    println!("\nmean latency   : {:.1} ms", report.mean_ms);
    println!("plateau latency: {:.1} ms", report.plateau_ms);
    println!(
        "servers        : peak {}, final {} (started at 4)",
        report.peak_servers, report.final_servers
    );
    println!("migrations     : {}", report.migrations);
}
