//! The *live* multi-threaded cluster: real OS threads, crossbeam channels,
//! and live actor migration under load — the same runtime architecture the
//! simulator models, over real concurrency.
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use plasma_actor::live::{LiveActor, LiveCluster, LiveCtx};

/// A bank-account actor: `deposit` adds the payload amount, `balance`
/// returns the total. State must survive every migration.
struct Account {
    balance: u64,
}

impl LiveActor for Account {
    fn on_message(
        &mut self,
        _ctx: &mut LiveCtx<'_>,
        fname: &str,
        payload: &Bytes,
    ) -> Option<Bytes> {
        match fname {
            "deposit" => {
                let amount = u64::from_le_bytes(payload[..8].try_into().ok()?);
                self.balance += amount;
                Some(Bytes::copy_from_slice(&self.balance.to_le_bytes()))
            }
            "balance" => Some(Bytes::copy_from_slice(&self.balance.to_le_bytes())),
            _ => None,
        }
    }
}

fn main() {
    let servers = 4;
    let cluster = Arc::new(LiveCluster::start(servers));
    let account = cluster.spawn(0, Box::new(Account { balance: 0 }));
    println!("account actor started on server 0 of {servers}");

    let started = Instant::now();
    let deposits_per_client = 5_000u64;
    let clients = 4u64;

    // Four client threads deposit concurrently...
    let mut handles = Vec::new();
    for c in 0..clients {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            for _ in 0..deposits_per_client {
                let one = Bytes::copy_from_slice(&1u64.to_le_bytes());
                cluster
                    .request(account, "deposit", one)
                    .expect("deposit acknowledged");
            }
            c
        }));
    }
    // ...while the account migrates between all four server threads.
    let migrator = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            for round in 0..60usize {
                cluster.migrate(account, round % servers);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    migrator.join().unwrap();

    let balance = cluster
        .request(account, "balance", Bytes::new())
        .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
        .unwrap();
    let expected = clients * deposits_per_client;
    let final_home = cluster.actor_server(account);
    let stats = Arc::try_unwrap(cluster).ok().unwrap().shutdown();
    println!(
        "{expected} concurrent deposits in {:?}; final balance {balance}",
        started.elapsed()
    );
    println!(
        "actor ended on server {final_home:?} after {} migrations; {} messages forwarded mid-flight, {} dropped",
        stats.migrations, stats.forwarded, stats.dropped
    );
    assert_eq!(balance, expected, "no deposit lost across live migrations");
    println!("state and every request survived live migration under load.");
}
