//! Tracing and decision audit: run the Metadata Server hot-folder
//! scenario with tracing enabled, then ask the tracer *why* the hot
//! folder moved and export the run for chrome://tracing.
//!
//! ```sh
//! cargo run --release --example tracing_audit
//! ```

use plasma::prelude::*;

/// A folder actor: opening it touches every file in it.
struct Folder {
    files: Vec<ActorId>,
    next_responder: usize,
}

impl ActorLogic for Folder {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.001);
        if self.files.is_empty() {
            ctx.reply(256);
            return;
        }
        let responder = self.files[self.next_responder % self.files.len()];
        self.next_responder += 1;
        ctx.send(responder, "read", 128);
        for &f in &self.files {
            if f != responder {
                ctx.send_detached(f, "read", 128);
            }
        }
    }
}

struct File;

impl ActorLogic for File {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.0016);
        if msg.corr.is_some() {
            ctx.reply(512);
        }
    }
}

/// Clients hit folder 0 half the time, the rest uniformly.
struct MetadataClient {
    folders: Vec<ActorId>,
}

impl MetadataClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let target = if ctx.rng().chance(0.5) {
            self.folders[0]
        } else {
            let rest = self.folders.len() - 1;
            self.folders[1 + ctx.rng().index(rest)]
        };
        ctx.request(target, "open", 96);
    }
}

impl ClientLogic for MetadataClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }
    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(SimDuration::from_millis(60), 0);
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

fn main() {
    let mut schema = ActorSchema::new();
    schema.actor_type("Folder").prop("files").func("open");
    schema.actor_type("File").func("read");
    let policy = "server.cpu.perc > 80 and \
                  client.call(Folder(fo).open).perc > 40 and \
                  File(fi) in ref(fo.files) => \
                  reserve(fo, cpu); colocate(fo, fi);";

    let period = SimDuration::from_secs(80);
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: 11,
            elasticity_period: period,
            min_residency: period,
            ..RuntimeConfig::default()
        })
        .policy(policy, &schema)
        // Keep decisions, drop per-message events: the whole run's decision
        // history then fits the default ring.
        .tracing(TraceConfig::default().without(Category::Message))
        .build()
        .expect("policy compiles");

    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    rt.add_server(InstanceType::m1_small());
    let mut folders = Vec::new();
    for _ in 0..4 {
        let files: Vec<ActorId> = (0..8)
            .map(|_| rt.spawn_actor("File", Box::new(File), 256 << 10, s0))
            .collect();
        let folder = rt.spawn_actor(
            "Folder",
            Box::new(Folder {
                files: files.clone(),
                next_responder: 0,
            }),
            128 << 10,
            s0,
        );
        for f in files {
            rt.actor_add_ref(folder, "files", f);
        }
        folders.push(folder);
    }
    for _ in 0..16 {
        rt.add_client(Box::new(MetadataClient {
            folders: folders.clone(),
        }));
    }

    app.run_until(SimTime::from_secs(200));

    let hot = folders[0];
    let now = app.runtime().now();
    println!(
        "hot folder #{} now lives on server {:?}\n",
        hot.0,
        app.runtime().actor_server(hot)
    );

    println!("why did it move? (root cause first)");
    let chain = app.tracer().explain(hot.0, now);
    print!("{}", render_explanation(&chain));

    let file = app.runtime().actor_refs(hot, "files")[0];
    println!("\nwhy did its first file follow?");
    let chain = app.tracer().explain(file.0, now);
    print!("{}", render_explanation(&chain));

    let dir = results_dir();
    let jsonl = write_under(&dir, "tracing_audit.jsonl", &app.tracer().jsonl()).unwrap();
    let chrome = write_under(
        &dir,
        "tracing_audit.chrome.json",
        &app.tracer().chrome_trace(),
    )
    .unwrap();
    println!(
        "\n{} events recorded ({} dropped)",
        app.tracer().len(),
        app.tracer().dropped()
    );
    println!("JSONL:        {}", jsonl.display());
    println!(
        "chrome trace: {}  (open in chrome://tracing)",
        chrome.display()
    );
}
