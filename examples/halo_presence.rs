//! Halo Presence Service: why creation-time placement matters.
//!
//! The interaction rule `Player(p) in ref(Session(s).players) => pin(s);
//! colocate(p, s);` places each new player on its session's server from
//! birth; the frequency-based default rule places randomly and repairs
//! placement only after observing traffic for an elasticity period.
//!
//! ```sh
//! cargo run --release --example halo_presence
//! ```

use plasma_apps::halo::{run, HaloConfig, Mode};

fn main() {
    println!("Halo Presence Service: 32 consoles joining in 4 waves\n");
    for (mode, tag) in [
        (Mode::InterRule, "inter-rule (application knowledge)"),
        (Mode::DefRule, "def-rule (frequency heuristic)"),
    ] {
        let report = run(&HaloConfig {
            mode,
            ..HaloConfig::default()
        });
        println!("== {tag} ==");
        println!(
            "   mean heartbeat latency {:.1} ms, worst 5s bucket {:.1} ms",
            report.mean_ms, report.peak_ms
        );
        println!(
            "   players colocated with session: {}/{}; migrations: {}",
            report.colocated.0, report.colocated.1, report.migrations
        );
        print!("   latency sparkline: ");
        let max = report.peak_ms.max(1.0);
        for &(_, v) in report.latency_series.iter().step_by(4) {
            let level = ((v / max) * 7.0).round() as usize;
            print!(
                "{}",
                [
                    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
                    '\u{2587}', '\u{2588}'
                ][level.min(7)]
            );
        }
        println!("\n");
    }
    println!("the inter-rule line is flat: every player starts on the right server.");
}
