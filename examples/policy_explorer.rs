//! Policy explorer: compile every Table-1 policy, pretty-print the parsed
//! rules, classify behaviors (LEM vs GEM side), and show the conflict
//! detector at work.
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```

use plasma_apps::table1::{applications, compile_entry};
use plasma_epl::{compile, ActorSchema};

fn main() {
    for entry in applications() {
        let compiled = compile_entry(&entry);
        println!("== {} ({}) ==", entry.name, entry.source);
        for rule in &compiled.rules {
            println!("  rule {}: {}", rule.index + 1, rule.cond);
            for cb in &rule.behaviors {
                println!(
                    "      -> {} [{} side, priority {}]",
                    cb.behavior,
                    if cb.is_resource { "GEM" } else { "LEM" },
                    cb.priority
                );
            }
            if !rule.vars.is_empty() {
                let vars: Vec<String> = rule
                    .vars
                    .iter()
                    .map(|v| format!("{}: {}", v.name, v.atype))
                    .collect();
                println!("      vars: {}", vars.join(", "));
            }
        }
        for warning in &compiled.warnings {
            println!("  {warning}");
        }
        println!();
    }

    // A deliberately conflicting policy to show the static checker.
    println!("== conflict detector demo ==");
    let mut schema = ActorSchema::new();
    schema.actor_type("Cache").func("get");
    let conflicted = compile(
        "true => colocate(Cache(a), Cache(b));\n\
         true => separate(Cache(c), Cache(d));\n\
         true => pin(Cache(e));\n\
         server.cpu.perc > 80 => balance({Cache}, cpu);",
        &schema,
    )
    .expect("compiles despite conflicts");
    for warning in &conflicted.warnings {
        println!("  {warning}");
    }
}
