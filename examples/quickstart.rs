//! Quickstart: a stateful key-value service whose hot shard overloads its
//! server, fixed by a three-line elasticity policy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plasma::prelude::*;
use plasma_sim::SimTime;

/// A shard of the key-value store: real entries, real CPU per request.
struct Shard {
    entries: std::collections::BTreeMap<u64, u64>,
    get_work: f64,
}

impl ActorLogic for Shard {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(self.get_work);
        let value = msg
            .take_payload::<u64>()
            .and_then(|k| self.entries.get(&k).copied())
            .unwrap_or(0);
        ctx.reply_with(128, Box::new(value));
    }
}

/// A client hammering one shard (closed loop with a short think time).
struct ShardClient {
    shard: ActorId,
    think: SimDuration,
}

impl ClientLogic for ShardClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        let key = ctx.rng().below(1_000);
        ctx.request_with(self.shard, "get", 64, Box::new(key));
    }
    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(self.think, 0);
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        let key = ctx.rng().below(1_000);
        ctx.request_with(self.shard, "get", 64, Box::new(key));
    }
}

fn main() {
    // 1. Describe the application to the policy compiler.
    let mut schema = ActorSchema::new();
    schema.actor_type("Shard").func("get");

    // 2. The elasticity policy: keep every server's CPU between 60% and
    //    80% by migrating shards.
    let policy = "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Shard}, cpu);";

    // 3. Build the system.
    let mut app = Plasma::builder()
        .seed(42)
        .policy(policy, &schema)
        .build()
        .expect("policy compiles");
    for warning in app.warnings() {
        println!("compiler: {warning}");
    }

    // 4. Two servers; all six shards start piled onto the first one.
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for shard_no in 0..6 {
        let entries = (0..1_000u64).map(|k| (k, k * shard_no)).collect();
        let shard = rt.spawn_actor(
            "Shard",
            Box::new(Shard {
                entries,
                get_work: 0.004,
            }),
            8 << 20,
            s0,
        );
        for _ in 0..3 {
            rt.add_client(Box::new(ShardClient {
                shard,
                think: SimDuration::from_millis(50),
            }));
        }
    }

    // 5. Run five simulated minutes and report.
    app.run_until(SimTime::from_secs(300));
    let rt = app.runtime();
    println!("\nafter 5 simulated minutes:");
    println!(
        "  shards per server: {} on {s0:?}, {} on {s1:?}",
        rt.actor_count_on(s0),
        rt.actor_count_on(s1)
    );
    for sid in rt.cluster().running_ids() {
        let cpu = rt
            .snapshot()
            .server(sid)
            .map(|s| s.usage.cpu())
            .unwrap_or(0.0);
        println!("  {sid:?} cpu: {:.0}%", cpu * 100.0);
    }
    let report = app.report();
    println!("  requests answered : {}", report.replies);
    println!("  mean latency      : {:.1} ms", report.mean_latency_ms());
    println!("  migrations        : {}", report.migrations.len());
    for m in &report.migrations {
        println!(
            "    t={:.0}s {:?} {:?} -> {:?}",
            m.at.as_secs_f64(),
            m.actor,
            m.src,
            m.dst
        );
    }
    assert!(
        rt.actor_count_on(s1) >= 2,
        "the balance rule should have spread the shards"
    );
    println!("\nthe balance rule spread the hot shards automatically.");
}
