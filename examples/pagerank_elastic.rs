//! Elastic PageRank: the paper's §5.4 headline scenario as a library user
//! would run it — generate a graph, partition it, and compare PLASMA's
//! CPU-balance rule against Orleans-style count balancing.
//!
//! ```sh
//! cargo run --release --example pagerank_elastic
//! ```

use plasma_apps::pagerank::{run, Mode, PageRankConfig};

fn main() {
    let base = PageRankConfig {
        max_iters: 25,
        seed: 13,
        ..PageRankConfig::default()
    };
    println!(
        "PageRank over a {}-vertex power-law graph, {} partitions on {} m5.large servers\n",
        base.vertices, base.partitions, base.servers
    );
    let mut results = Vec::new();
    for (mode, tag) in [
        (Mode::Plasma, "PLASMA (balance cpu 60-80%)"),
        (Mode::Orleans, "Orleans (equal actor counts)"),
        (Mode::None, "no elasticity"),
        (Mode::Mizan, "Mizan (vertex migration)"),
    ] {
        let report = run(&PageRankConfig {
            mode,
            ..base.clone()
        });
        println!(
            "{tag:<32} converged in {:>6.2}s over {} iterations, {} migrations, final L1 delta {:.2e}",
            report.converged_time,
            report.iteration_times.len(),
            report.migrations,
            report.final_delta
        );
        results.push((tag, report.converged_time));
    }
    let plasma = results[0].1;
    let orleans = results[1].1;
    println!(
        "\nPLASMA vs Orleans: {:.0}% faster convergence (paper reports ~24%)",
        (1.0 - plasma / orleans) * 100.0
    );
    println!("policy used:\n  {}", plasma_apps::pagerank::policy());
}
