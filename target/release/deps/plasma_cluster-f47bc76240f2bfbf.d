/root/repo/target/release/deps/plasma_cluster-f47bc76240f2bfbf.d: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libplasma_cluster-f47bc76240f2bfbf.rlib: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libplasma_cluster-f47bc76240f2bfbf.rmeta: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/instance.rs:
crates/cluster/src/network.rs:
crates/cluster/src/resources.rs:
crates/cluster/src/server.rs:
crates/cluster/src/topology.rs:
