/root/repo/target/release/deps/plasma_emr-560b8bf1eb31f068.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/release/deps/libplasma_emr-560b8bf1eb31f068.rlib: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/release/deps/libplasma_emr-560b8bf1eb31f068.rmeta: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
