/root/repo/target/release/deps/serde_derive-ebd7396bd72c463a.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-ebd7396bd72c463a.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
