/root/repo/target/release/deps/plasma_trace-305d894ffe4d44c6.d: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/release/deps/libplasma_trace-305d894ffe4d44c6.rlib: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/release/deps/libplasma_trace-305d894ffe4d44c6.rmeta: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

crates/trace/src/lib.rs:
crates/trace/src/audit.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/record.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
