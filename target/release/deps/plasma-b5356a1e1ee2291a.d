/root/repo/target/release/deps/plasma-b5356a1e1ee2291a.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libplasma-b5356a1e1ee2291a.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libplasma-b5356a1e1ee2291a.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
