/root/repo/target/release/deps/plasma_sim-47d29c15de99bbd6.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libplasma_sim-47d29c15de99bbd6.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libplasma_sim-47d29c15de99bbd6.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
