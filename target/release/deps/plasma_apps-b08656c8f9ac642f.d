/root/repo/target/release/deps/plasma_apps-b08656c8f9ac642f.d: crates/apps/src/lib.rs crates/apps/src/bptree.rs crates/apps/src/cassandra.rs crates/apps/src/chatroom.rs crates/apps/src/common.rs crates/apps/src/estore.rs crates/apps/src/halo.rs crates/apps/src/media.rs crates/apps/src/metadata.rs crates/apps/src/pagerank.rs crates/apps/src/piccolo.rs crates/apps/src/table1.rs crates/apps/src/zexpander.rs

/root/repo/target/release/deps/libplasma_apps-b08656c8f9ac642f.rlib: crates/apps/src/lib.rs crates/apps/src/bptree.rs crates/apps/src/cassandra.rs crates/apps/src/chatroom.rs crates/apps/src/common.rs crates/apps/src/estore.rs crates/apps/src/halo.rs crates/apps/src/media.rs crates/apps/src/metadata.rs crates/apps/src/pagerank.rs crates/apps/src/piccolo.rs crates/apps/src/table1.rs crates/apps/src/zexpander.rs

/root/repo/target/release/deps/libplasma_apps-b08656c8f9ac642f.rmeta: crates/apps/src/lib.rs crates/apps/src/bptree.rs crates/apps/src/cassandra.rs crates/apps/src/chatroom.rs crates/apps/src/common.rs crates/apps/src/estore.rs crates/apps/src/halo.rs crates/apps/src/media.rs crates/apps/src/metadata.rs crates/apps/src/pagerank.rs crates/apps/src/piccolo.rs crates/apps/src/table1.rs crates/apps/src/zexpander.rs

crates/apps/src/lib.rs:
crates/apps/src/bptree.rs:
crates/apps/src/cassandra.rs:
crates/apps/src/chatroom.rs:
crates/apps/src/common.rs:
crates/apps/src/estore.rs:
crates/apps/src/halo.rs:
crates/apps/src/media.rs:
crates/apps/src/metadata.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/piccolo.rs:
crates/apps/src/table1.rs:
crates/apps/src/zexpander.rs:
