/root/repo/target/release/deps/plasma_bench-7e184da9550cdbb3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libplasma_bench-7e184da9550cdbb3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libplasma_bench-7e184da9550cdbb3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
