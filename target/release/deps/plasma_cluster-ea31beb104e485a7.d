/root/repo/target/release/deps/plasma_cluster-ea31beb104e485a7.d: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libplasma_cluster-ea31beb104e485a7.rlib: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/release/deps/libplasma_cluster-ea31beb104e485a7.rmeta: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/instance.rs:
crates/cluster/src/network.rs:
crates/cluster/src/resources.rs:
crates/cluster/src/server.rs:
crates/cluster/src/topology.rs:
