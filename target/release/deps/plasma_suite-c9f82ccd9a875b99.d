/root/repo/target/release/deps/plasma_suite-c9f82ccd9a875b99.d: suite/lib.rs

/root/repo/target/release/deps/libplasma_suite-c9f82ccd9a875b99.rlib: suite/lib.rs

/root/repo/target/release/deps/libplasma_suite-c9f82ccd9a875b99.rmeta: suite/lib.rs

suite/lib.rs:
