/root/repo/target/release/deps/criterion-0b8672dd912577b3.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0b8672dd912577b3.rlib: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0b8672dd912577b3.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
