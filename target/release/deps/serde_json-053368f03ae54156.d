/root/repo/target/release/deps/serde_json-053368f03ae54156.d: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

/root/repo/target/release/deps/libserde_json-053368f03ae54156.rlib: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

/root/repo/target/release/deps/libserde_json-053368f03ae54156.rmeta: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

third_party/serde_json/src/lib.rs:
third_party/serde_json/src/macros.rs:
third_party/serde_json/src/parse.rs:
