/root/repo/target/release/deps/plasma_actor-56b82beb325c52c1.d: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs

/root/repo/target/release/deps/libplasma_actor-56b82beb325c52c1.rlib: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs

/root/repo/target/release/deps/libplasma_actor-56b82beb325c52c1.rmeta: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs

crates/actor/src/lib.rs:
crates/actor/src/controller.rs:
crates/actor/src/entry.rs:
crates/actor/src/ids.rs:
crates/actor/src/live.rs:
crates/actor/src/logic.rs:
crates/actor/src/message.rs:
crates/actor/src/report.rs:
crates/actor/src/runtime.rs:
crates/actor/src/stats.rs:
