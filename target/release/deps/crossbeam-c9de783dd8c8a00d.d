/root/repo/target/release/deps/crossbeam-c9de783dd8c8a00d.d: third_party/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c9de783dd8c8a00d.rlib: third_party/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c9de783dd8c8a00d.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
