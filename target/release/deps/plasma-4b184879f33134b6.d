/root/repo/target/release/deps/plasma-4b184879f33134b6.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libplasma-4b184879f33134b6.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libplasma-4b184879f33134b6.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
