/root/repo/target/release/deps/plasma_suite-91e9df0ef8b02109.d: suite/lib.rs

/root/repo/target/release/deps/libplasma_suite-91e9df0ef8b02109.rlib: suite/lib.rs

/root/repo/target/release/deps/libplasma_suite-91e9df0ef8b02109.rmeta: suite/lib.rs

suite/lib.rs:
