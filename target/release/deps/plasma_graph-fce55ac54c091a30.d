/root/repo/target/release/deps/plasma_graph-fce55ac54c091a30.d: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/release/deps/libplasma_graph-fce55ac54c091a30.rlib: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/release/deps/libplasma_graph-fce55ac54c091a30.rmeta: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

crates/graph/src/lib.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/partition.rs:
