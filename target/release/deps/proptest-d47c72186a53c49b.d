/root/repo/target/release/deps/proptest-d47c72186a53c49b.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

/root/repo/target/release/deps/libproptest-d47c72186a53c49b.rlib: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

/root/repo/target/release/deps/libproptest-d47c72186a53c49b.rmeta: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/string.rs:
third_party/proptest/src/test_runner.rs:
third_party/proptest/src/macros.rs:
