/root/repo/target/release/deps/trace_overhead-e8fad277b50ec7d6.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/release/deps/trace_overhead-e8fad277b50ec7d6: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
