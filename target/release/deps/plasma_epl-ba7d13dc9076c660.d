/root/repo/target/release/deps/plasma_epl-ba7d13dc9076c660.d: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

/root/repo/target/release/deps/libplasma_epl-ba7d13dc9076c660.rlib: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

/root/repo/target/release/deps/libplasma_epl-ba7d13dc9076c660.rmeta: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

crates/epl/src/lib.rs:
crates/epl/src/analyze.rs:
crates/epl/src/ast.rs:
crates/epl/src/conflict.rs:
crates/epl/src/error.rs:
crates/epl/src/parser.rs:
crates/epl/src/schema.rs:
crates/epl/src/schema_text.rs:
crates/epl/src/token.rs:
