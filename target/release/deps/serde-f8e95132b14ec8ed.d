/root/repo/target/release/deps/serde-f8e95132b14ec8ed.d: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f8e95132b14ec8ed.rlib: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f8e95132b14ec8ed.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
