/root/repo/target/release/deps/parking_lot-6adff07ce3cc575f.d: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6adff07ce3cc575f.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6adff07ce3cc575f.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
