/root/repo/target/release/deps/bytes-9275b25dc80ca011.d: third_party/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-9275b25dc80ca011.rlib: third_party/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-9275b25dc80ca011.rmeta: third_party/bytes/src/lib.rs

third_party/bytes/src/lib.rs:
