/root/repo/target/release/examples/probe_scratch-01e437051babcd4e.d: examples/probe_scratch.rs

/root/repo/target/release/examples/probe_scratch-01e437051babcd4e: examples/probe_scratch.rs

examples/probe_scratch.rs:
