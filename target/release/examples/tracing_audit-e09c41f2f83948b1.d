/root/repo/target/release/examples/tracing_audit-e09c41f2f83948b1.d: examples/tracing_audit.rs

/root/repo/target/release/examples/tracing_audit-e09c41f2f83948b1: examples/tracing_audit.rs

examples/tracing_audit.rs:
