/root/repo/target/debug/deps/bytes-8c47a2873d77f817.d: third_party/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-8c47a2873d77f817.rlib: third_party/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-8c47a2873d77f817.rmeta: third_party/bytes/src/lib.rs

third_party/bytes/src/lib.rs:
