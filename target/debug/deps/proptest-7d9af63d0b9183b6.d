/root/repo/target/debug/deps/proptest-7d9af63d0b9183b6.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-7d9af63d0b9183b6.rmeta: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs Cargo.toml

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/string.rs:
third_party/proptest/src/test_runner.rs:
third_party/proptest/src/macros.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
