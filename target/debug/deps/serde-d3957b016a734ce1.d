/root/repo/target/debug/deps/serde-d3957b016a734ce1.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-d3957b016a734ce1.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
