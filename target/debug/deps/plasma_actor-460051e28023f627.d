/root/repo/target/debug/deps/plasma_actor-460051e28023f627.d: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_actor-460051e28023f627.rmeta: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs Cargo.toml

crates/actor/src/lib.rs:
crates/actor/src/controller.rs:
crates/actor/src/entry.rs:
crates/actor/src/ids.rs:
crates/actor/src/live.rs:
crates/actor/src/logic.rs:
crates/actor/src/message.rs:
crates/actor/src/report.rs:
crates/actor/src/runtime.rs:
crates/actor/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
