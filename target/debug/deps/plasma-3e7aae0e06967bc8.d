/root/repo/target/debug/deps/plasma-3e7aae0e06967bc8.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libplasma-3e7aae0e06967bc8.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libplasma-3e7aae0e06967bc8.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
