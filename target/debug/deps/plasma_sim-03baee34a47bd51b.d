/root/repo/target/debug/deps/plasma_sim-03baee34a47bd51b.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libplasma_sim-03baee34a47bd51b.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libplasma_sim-03baee34a47bd51b.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
