/root/repo/target/debug/deps/plasma_bench-1a7ac72cc0d644af.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplasma_bench-1a7ac72cc0d644af.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplasma_bench-1a7ac72cc0d644af.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
