/root/repo/target/debug/deps/tracing-5b9495e6f7ed6c5a.d: tests/tracing.rs

/root/repo/target/debug/deps/tracing-5b9495e6f7ed6c5a: tests/tracing.rs

tests/tracing.rs:
