/root/repo/target/debug/deps/eplc_cli-de7d604bfdf022ab.d: crates/epl/tests/eplc_cli.rs Cargo.toml

/root/repo/target/debug/deps/libeplc_cli-de7d604bfdf022ab.rmeta: crates/epl/tests/eplc_cli.rs Cargo.toml

crates/epl/tests/eplc_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_eplc=placeholder:eplc
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
