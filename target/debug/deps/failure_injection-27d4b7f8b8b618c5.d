/root/repo/target/debug/deps/failure_injection-27d4b7f8b8b618c5.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-27d4b7f8b8b618c5: tests/failure_injection.rs

tests/failure_injection.rs:
