/root/repo/target/debug/deps/ablations-8bc95697db694548.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-8bc95697db694548.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
