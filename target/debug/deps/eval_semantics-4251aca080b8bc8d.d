/root/repo/target/debug/deps/eval_semantics-4251aca080b8bc8d.d: crates/emr/tests/eval_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libeval_semantics-4251aca080b8bc8d.rmeta: crates/emr/tests/eval_semantics.rs Cargo.toml

crates/emr/tests/eval_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
