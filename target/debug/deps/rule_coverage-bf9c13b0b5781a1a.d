/root/repo/target/debug/deps/rule_coverage-bf9c13b0b5781a1a.d: crates/emr/tests/rule_coverage.rs

/root/repo/target/debug/deps/rule_coverage-bf9c13b0b5781a1a: crates/emr/tests/rule_coverage.rs

crates/emr/tests/rule_coverage.rs:
