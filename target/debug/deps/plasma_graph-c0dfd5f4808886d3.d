/root/repo/target/debug/deps/plasma_graph-c0dfd5f4808886d3.d: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_graph-c0dfd5f4808886d3.rmeta: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
