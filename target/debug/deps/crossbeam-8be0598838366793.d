/root/repo/target/debug/deps/crossbeam-8be0598838366793.d: third_party/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-8be0598838366793.rmeta: third_party/crossbeam/src/lib.rs Cargo.toml

third_party/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
