/root/repo/target/debug/deps/plasma_suite-82b13bb300a82e6b.d: suite/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_suite-82b13bb300a82e6b.rmeta: suite/lib.rs Cargo.toml

suite/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
