/root/repo/target/debug/deps/runtime_behavior-cf7e12f6579798fd.d: crates/actor/tests/runtime_behavior.rs

/root/repo/target/debug/deps/runtime_behavior-cf7e12f6579798fd: crates/actor/tests/runtime_behavior.rs

crates/actor/tests/runtime_behavior.rs:
