/root/repo/target/debug/deps/plasma_suite-5f01a30e2d1fd587.d: suite/lib.rs

/root/repo/target/debug/deps/libplasma_suite-5f01a30e2d1fd587.rlib: suite/lib.rs

/root/repo/target/debug/deps/libplasma_suite-5f01a30e2d1fd587.rmeta: suite/lib.rs

suite/lib.rs:
