/root/repo/target/debug/deps/fig8_pagerank_dynalloc-46bb168896daf88e.d: crates/bench/benches/fig8_pagerank_dynalloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_pagerank_dynalloc-46bb168896daf88e.rmeta: crates/bench/benches/fig8_pagerank_dynalloc.rs Cargo.toml

crates/bench/benches/fig8_pagerank_dynalloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
