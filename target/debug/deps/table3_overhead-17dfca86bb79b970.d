/root/repo/target/debug/deps/table3_overhead-17dfca86bb79b970.d: crates/bench/benches/table3_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_overhead-17dfca86bb79b970.rmeta: crates/bench/benches/table3_overhead.rs Cargo.toml

crates/bench/benches/table3_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
