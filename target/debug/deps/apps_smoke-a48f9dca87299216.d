/root/repo/target/debug/deps/apps_smoke-a48f9dca87299216.d: tests/apps_smoke.rs

/root/repo/target/debug/deps/apps_smoke-a48f9dca87299216: tests/apps_smoke.rs

tests/apps_smoke.rs:
