/root/repo/target/debug/deps/eval_semantics-2b9eb4a38cb7c48c.d: crates/emr/tests/eval_semantics.rs

/root/repo/target/debug/deps/eval_semantics-2b9eb4a38cb7c48c: crates/emr/tests/eval_semantics.rs

crates/emr/tests/eval_semantics.rs:
