/root/repo/target/debug/deps/plasma_trace-333d265a317699f5.d: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/debug/deps/plasma_trace-333d265a317699f5: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

crates/trace/src/lib.rs:
crates/trace/src/audit.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/record.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
