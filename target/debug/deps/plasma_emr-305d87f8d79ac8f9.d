/root/repo/target/debug/deps/plasma_emr-305d87f8d79ac8f9.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/libplasma_emr-305d87f8d79ac8f9.rlib: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/libplasma_emr-305d87f8d79ac8f9.rmeta: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
