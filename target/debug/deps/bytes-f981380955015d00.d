/root/repo/target/debug/deps/bytes-f981380955015d00.d: third_party/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-f981380955015d00: third_party/bytes/src/lib.rs

third_party/bytes/src/lib.rs:
