/root/repo/target/debug/deps/plasma_bench-a1102b6fe1a5afec.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_bench-a1102b6fe1a5afec.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
