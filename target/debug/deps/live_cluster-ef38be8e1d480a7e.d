/root/repo/target/debug/deps/live_cluster-ef38be8e1d480a7e.d: crates/actor/tests/live_cluster.rs

/root/repo/target/debug/deps/live_cluster-ef38be8e1d480a7e: crates/actor/tests/live_cluster.rs

crates/actor/tests/live_cluster.rs:
