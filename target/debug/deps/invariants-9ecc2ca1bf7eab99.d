/root/repo/target/debug/deps/invariants-9ecc2ca1bf7eab99.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-9ecc2ca1bf7eab99: tests/invariants.rs

tests/invariants.rs:
