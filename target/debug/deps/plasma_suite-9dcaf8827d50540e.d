/root/repo/target/debug/deps/plasma_suite-9dcaf8827d50540e.d: suite/lib.rs

/root/repo/target/debug/deps/libplasma_suite-9dcaf8827d50540e.rlib: suite/lib.rs

/root/repo/target/debug/deps/libplasma_suite-9dcaf8827d50540e.rmeta: suite/lib.rs

suite/lib.rs:
