/root/repo/target/debug/deps/plasma-65263b28a0662f97.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libplasma-65263b28a0662f97.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libplasma-65263b28a0662f97.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
