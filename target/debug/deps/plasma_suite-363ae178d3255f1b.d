/root/repo/target/debug/deps/plasma_suite-363ae178d3255f1b.d: suite/lib.rs

/root/repo/target/debug/deps/libplasma_suite-363ae178d3255f1b.rlib: suite/lib.rs

/root/repo/target/debug/deps/libplasma_suite-363ae178d3255f1b.rmeta: suite/lib.rs

suite/lib.rs:
