/root/repo/target/debug/deps/plasma_suite-95233106cbc9b9a6.d: suite/lib.rs

/root/repo/target/debug/deps/plasma_suite-95233106cbc9b9a6: suite/lib.rs

suite/lib.rs:
