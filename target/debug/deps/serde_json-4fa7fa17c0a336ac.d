/root/repo/target/debug/deps/serde_json-4fa7fa17c0a336ac.d: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

/root/repo/target/debug/deps/serde_json-4fa7fa17c0a336ac: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

third_party/serde_json/src/lib.rs:
third_party/serde_json/src/macros.rs:
third_party/serde_json/src/parse.rs:
