/root/repo/target/debug/deps/regression_check_tmp-7c8cc65800e6f3a5.d: tests/regression_check_tmp.rs

/root/repo/target/debug/deps/regression_check_tmp-7c8cc65800e6f3a5: tests/regression_check_tmp.rs

tests/regression_check_tmp.rs:
