/root/repo/target/debug/deps/ordering_accounting-86ef669830669d09.d: crates/actor/tests/ordering_accounting.rs

/root/repo/target/debug/deps/ordering_accounting-86ef669830669d09: crates/actor/tests/ordering_accounting.rs

crates/actor/tests/ordering_accounting.rs:
