/root/repo/target/debug/deps/failure_injection-e95f3b585cf7230c.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-e95f3b585cf7230c: tests/failure_injection.rs

tests/failure_injection.rs:
