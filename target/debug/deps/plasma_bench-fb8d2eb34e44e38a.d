/root/repo/target/debug/deps/plasma_bench-fb8d2eb34e44e38a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_bench-fb8d2eb34e44e38a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
