/root/repo/target/debug/deps/plasma_emr-1df30b6d74e879ab.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/plasma_emr-1df30b6d74e879ab: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
