/root/repo/target/debug/deps/apps_smoke-daa03cb20e28ecf7.d: tests/apps_smoke.rs

/root/repo/target/debug/deps/apps_smoke-daa03cb20e28ecf7: tests/apps_smoke.rs

tests/apps_smoke.rs:
