/root/repo/target/debug/deps/plasma_apps-20bf02a561a2a7e2.d: crates/apps/src/lib.rs crates/apps/src/bptree.rs crates/apps/src/cassandra.rs crates/apps/src/chatroom.rs crates/apps/src/common.rs crates/apps/src/estore.rs crates/apps/src/halo.rs crates/apps/src/media.rs crates/apps/src/metadata.rs crates/apps/src/pagerank.rs crates/apps/src/piccolo.rs crates/apps/src/table1.rs crates/apps/src/zexpander.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_apps-20bf02a561a2a7e2.rmeta: crates/apps/src/lib.rs crates/apps/src/bptree.rs crates/apps/src/cassandra.rs crates/apps/src/chatroom.rs crates/apps/src/common.rs crates/apps/src/estore.rs crates/apps/src/halo.rs crates/apps/src/media.rs crates/apps/src/metadata.rs crates/apps/src/pagerank.rs crates/apps/src/piccolo.rs crates/apps/src/table1.rs crates/apps/src/zexpander.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/bptree.rs:
crates/apps/src/cassandra.rs:
crates/apps/src/chatroom.rs:
crates/apps/src/common.rs:
crates/apps/src/estore.rs:
crates/apps/src/halo.rs:
crates/apps/src/media.rs:
crates/apps/src/metadata.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/piccolo.rs:
crates/apps/src/table1.rs:
crates/apps/src/zexpander.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
