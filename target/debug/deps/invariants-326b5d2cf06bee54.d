/root/repo/target/debug/deps/invariants-326b5d2cf06bee54.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-326b5d2cf06bee54: tests/invariants.rs

tests/invariants.rs:
