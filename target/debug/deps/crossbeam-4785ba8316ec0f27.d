/root/repo/target/debug/deps/crossbeam-4785ba8316ec0f27.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-4785ba8316ec0f27: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
