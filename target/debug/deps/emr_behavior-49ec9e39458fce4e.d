/root/repo/target/debug/deps/emr_behavior-49ec9e39458fce4e.d: crates/emr/tests/emr_behavior.rs

/root/repo/target/debug/deps/emr_behavior-49ec9e39458fce4e: crates/emr/tests/emr_behavior.rs

crates/emr/tests/emr_behavior.rs:
