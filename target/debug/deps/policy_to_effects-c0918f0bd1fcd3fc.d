/root/repo/target/debug/deps/policy_to_effects-c0918f0bd1fcd3fc.d: tests/policy_to_effects.rs

/root/repo/target/debug/deps/policy_to_effects-c0918f0bd1fcd3fc: tests/policy_to_effects.rs

tests/policy_to_effects.rs:
