/root/repo/target/debug/deps/plasma_suite-d03f9ef2e9291a11.d: suite/lib.rs

/root/repo/target/debug/deps/plasma_suite-d03f9ef2e9291a11: suite/lib.rs

suite/lib.rs:
