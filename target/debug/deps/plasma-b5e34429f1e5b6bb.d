/root/repo/target/debug/deps/plasma-b5e34429f1e5b6bb.d: crates/core/src/lib.rs crates/core/src/prelude.rs Cargo.toml

/root/repo/target/debug/deps/libplasma-b5e34429f1e5b6bb.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
