/root/repo/target/debug/deps/live_cluster-7d6c1ef70a44768c.d: crates/actor/tests/live_cluster.rs

/root/repo/target/debug/deps/live_cluster-7d6c1ef70a44768c: crates/actor/tests/live_cluster.rs

crates/actor/tests/live_cluster.rs:
