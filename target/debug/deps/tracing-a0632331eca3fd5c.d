/root/repo/target/debug/deps/tracing-a0632331eca3fd5c.d: tests/tracing.rs Cargo.toml

/root/repo/target/debug/deps/libtracing-a0632331eca3fd5c.rmeta: tests/tracing.rs Cargo.toml

tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
