/root/repo/target/debug/deps/plasma_sim-29eef7122d04c538.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/plasma_sim-29eef7122d04c538: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
