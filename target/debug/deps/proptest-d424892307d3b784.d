/root/repo/target/debug/deps/proptest-d424892307d3b784.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

/root/repo/target/debug/deps/libproptest-d424892307d3b784.rlib: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

/root/repo/target/debug/deps/libproptest-d424892307d3b784.rmeta: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/string.rs:
third_party/proptest/src/test_runner.rs:
third_party/proptest/src/macros.rs:
