/root/repo/target/debug/deps/plasma_epl-06ed4008407d779a.d: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_epl-06ed4008407d779a.rmeta: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs Cargo.toml

crates/epl/src/lib.rs:
crates/epl/src/analyze.rs:
crates/epl/src/ast.rs:
crates/epl/src/conflict.rs:
crates/epl/src/error.rs:
crates/epl/src/parser.rs:
crates/epl/src/schema.rs:
crates/epl/src/schema_text.rs:
crates/epl/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
