/root/repo/target/debug/deps/plasma_graph-bce51a8567e8ea52.d: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/debug/deps/plasma_graph-bce51a8567e8ea52: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

crates/graph/src/lib.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/partition.rs:
