/root/repo/target/debug/deps/apps_smoke-662dd07ede930829.d: tests/apps_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libapps_smoke-662dd07ede930829.rmeta: tests/apps_smoke.rs Cargo.toml

tests/apps_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
