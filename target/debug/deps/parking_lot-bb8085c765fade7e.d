/root/repo/target/debug/deps/parking_lot-bb8085c765fade7e.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-bb8085c765fade7e: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
