/root/repo/target/debug/deps/eplc-8b47e8865ecb2a86.d: crates/epl/src/bin/eplc.rs Cargo.toml

/root/repo/target/debug/deps/libeplc-8b47e8865ecb2a86.rmeta: crates/epl/src/bin/eplc.rs Cargo.toml

crates/epl/src/bin/eplc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
