/root/repo/target/debug/deps/bytes-61bee9a2a2d602a2.d: third_party/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-61bee9a2a2d602a2.rmeta: third_party/bytes/src/lib.rs Cargo.toml

third_party/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
