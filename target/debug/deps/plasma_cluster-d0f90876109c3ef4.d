/root/repo/target/debug/deps/plasma_cluster-d0f90876109c3ef4.d: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/plasma_cluster-d0f90876109c3ef4: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/instance.rs:
crates/cluster/src/network.rs:
crates/cluster/src/resources.rs:
crates/cluster/src/server.rs:
crates/cluster/src/topology.rs:
