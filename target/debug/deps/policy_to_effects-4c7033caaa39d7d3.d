/root/repo/target/debug/deps/policy_to_effects-4c7033caaa39d7d3.d: tests/policy_to_effects.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_to_effects-4c7033caaa39d7d3.rmeta: tests/policy_to_effects.rs Cargo.toml

tests/policy_to_effects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
