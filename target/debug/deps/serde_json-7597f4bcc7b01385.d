/root/repo/target/debug/deps/serde_json-7597f4bcc7b01385.d: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-7597f4bcc7b01385.rmeta: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs Cargo.toml

third_party/serde_json/src/lib.rs:
third_party/serde_json/src/macros.rs:
third_party/serde_json/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
