/root/repo/target/debug/deps/parking_lot-55f5ee7c91af0038.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-55f5ee7c91af0038.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-55f5ee7c91af0038.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
