/root/repo/target/debug/deps/runtime_behavior-8d3010c9c9ec7597.d: crates/actor/tests/runtime_behavior.rs

/root/repo/target/debug/deps/runtime_behavior-8d3010c9c9ec7597: crates/actor/tests/runtime_behavior.rs

crates/actor/tests/runtime_behavior.rs:
