/root/repo/target/debug/deps/serde-c15a3d5cb7d22adb.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c15a3d5cb7d22adb.rlib: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c15a3d5cb7d22adb.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
