/root/repo/target/debug/deps/eplc_cli-da3ed967536ab0d5.d: crates/epl/tests/eplc_cli.rs

/root/repo/target/debug/deps/eplc_cli-da3ed967536ab0d5: crates/epl/tests/eplc_cli.rs

crates/epl/tests/eplc_cli.rs:

# env-dep:CARGO_BIN_EXE_eplc=/root/repo/target/debug/eplc
