/root/repo/target/debug/deps/eplc-f17702c9219e04ee.d: crates/epl/src/bin/eplc.rs

/root/repo/target/debug/deps/eplc-f17702c9219e04ee: crates/epl/src/bin/eplc.rs

crates/epl/src/bin/eplc.rs:
