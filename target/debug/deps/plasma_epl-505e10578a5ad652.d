/root/repo/target/debug/deps/plasma_epl-505e10578a5ad652.d: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

/root/repo/target/debug/deps/libplasma_epl-505e10578a5ad652.rlib: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

/root/repo/target/debug/deps/libplasma_epl-505e10578a5ad652.rmeta: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

crates/epl/src/lib.rs:
crates/epl/src/analyze.rs:
crates/epl/src/ast.rs:
crates/epl/src/conflict.rs:
crates/epl/src/error.rs:
crates/epl/src/parser.rs:
crates/epl/src/schema.rs:
crates/epl/src/schema_text.rs:
crates/epl/src/token.rs:
