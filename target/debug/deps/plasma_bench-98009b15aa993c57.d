/root/repo/target/debug/deps/plasma_bench-98009b15aa993c57.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/plasma_bench-98009b15aa993c57: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
