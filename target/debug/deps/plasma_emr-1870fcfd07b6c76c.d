/root/repo/target/debug/deps/plasma_emr-1870fcfd07b6c76c.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_emr-1870fcfd07b6c76c.rmeta: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs Cargo.toml

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
