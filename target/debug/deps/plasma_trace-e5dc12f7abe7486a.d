/root/repo/target/debug/deps/plasma_trace-e5dc12f7abe7486a.d: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/debug/deps/libplasma_trace-e5dc12f7abe7486a.rlib: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/debug/deps/libplasma_trace-e5dc12f7abe7486a.rmeta: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

crates/trace/src/lib.rs:
crates/trace/src/audit.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/record.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
