/root/repo/target/debug/deps/invariants-35a805f79203340c.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-35a805f79203340c.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
