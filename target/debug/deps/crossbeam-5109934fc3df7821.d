/root/repo/target/debug/deps/crossbeam-5109934fc3df7821.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-5109934fc3df7821.rlib: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-5109934fc3df7821.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
