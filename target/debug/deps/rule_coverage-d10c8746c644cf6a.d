/root/repo/target/debug/deps/rule_coverage-d10c8746c644cf6a.d: crates/emr/tests/rule_coverage.rs

/root/repo/target/debug/deps/rule_coverage-d10c8746c644cf6a: crates/emr/tests/rule_coverage.rs

crates/emr/tests/rule_coverage.rs:
