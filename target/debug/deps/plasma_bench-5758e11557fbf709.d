/root/repo/target/debug/deps/plasma_bench-5758e11557fbf709.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplasma_bench-5758e11557fbf709.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplasma_bench-5758e11557fbf709.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
