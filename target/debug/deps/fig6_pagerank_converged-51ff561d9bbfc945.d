/root/repo/target/debug/deps/fig6_pagerank_converged-51ff561d9bbfc945.d: crates/bench/benches/fig6_pagerank_converged.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_pagerank_converged-51ff561d9bbfc945.rmeta: crates/bench/benches/fig6_pagerank_converged.rs Cargo.toml

crates/bench/benches/fig6_pagerank_converged.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
