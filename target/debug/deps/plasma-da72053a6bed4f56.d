/root/repo/target/debug/deps/plasma-da72053a6bed4f56.d: crates/core/src/lib.rs crates/core/src/prelude.rs Cargo.toml

/root/repo/target/debug/deps/libplasma-da72053a6bed4f56.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
