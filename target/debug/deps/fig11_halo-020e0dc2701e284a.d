/root/repo/target/debug/deps/fig11_halo-020e0dc2701e284a.d: crates/bench/benches/fig11_halo.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_halo-020e0dc2701e284a.rmeta: crates/bench/benches/fig11_halo.rs Cargo.toml

crates/bench/benches/fig11_halo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
