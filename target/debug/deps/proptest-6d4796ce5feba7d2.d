/root/repo/target/debug/deps/proptest-6d4796ce5feba7d2.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

/root/repo/target/debug/deps/proptest-6d4796ce5feba7d2: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/string.rs third_party/proptest/src/test_runner.rs third_party/proptest/src/macros.rs

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/string.rs:
third_party/proptest/src/test_runner.rs:
third_party/proptest/src/macros.rs:
