/root/repo/target/debug/deps/policy_to_effects-e3d53ba7eff0864d.d: tests/policy_to_effects.rs

/root/repo/target/debug/deps/policy_to_effects-e3d53ba7eff0864d: tests/policy_to_effects.rs

tests/policy_to_effects.rs:
