/root/repo/target/debug/deps/live_cluster-6205a0b96832714d.d: crates/actor/tests/live_cluster.rs Cargo.toml

/root/repo/target/debug/deps/liblive_cluster-6205a0b96832714d.rmeta: crates/actor/tests/live_cluster.rs Cargo.toml

crates/actor/tests/live_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
