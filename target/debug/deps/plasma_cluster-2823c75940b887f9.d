/root/repo/target/debug/deps/plasma_cluster-2823c75940b887f9.d: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/libplasma_cluster-2823c75940b887f9.rlib: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

/root/repo/target/debug/deps/libplasma_cluster-2823c75940b887f9.rmeta: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs

crates/cluster/src/lib.rs:
crates/cluster/src/instance.rs:
crates/cluster/src/network.rs:
crates/cluster/src/resources.rs:
crates/cluster/src/server.rs:
crates/cluster/src/topology.rs:
