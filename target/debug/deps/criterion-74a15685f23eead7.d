/root/repo/target/debug/deps/criterion-74a15685f23eead7.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74a15685f23eead7.rlib: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74a15685f23eead7.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
