/root/repo/target/debug/deps/microbench-ccab725f7926bad8.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-ccab725f7926bad8.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
