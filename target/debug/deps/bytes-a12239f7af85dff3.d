/root/repo/target/debug/deps/bytes-a12239f7af85dff3.d: third_party/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-a12239f7af85dff3.rmeta: third_party/bytes/src/lib.rs Cargo.toml

third_party/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
