/root/repo/target/debug/deps/plasma_graph-33bcf07a0a12f211.d: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/debug/deps/libplasma_graph-33bcf07a0a12f211.rlib: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/debug/deps/libplasma_graph-33bcf07a0a12f211.rmeta: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

crates/graph/src/lib.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/partition.rs:
