/root/repo/target/debug/deps/plasma_epl-a59fe6436f932c91.d: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

/root/repo/target/debug/deps/plasma_epl-a59fe6436f932c91: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs

crates/epl/src/lib.rs:
crates/epl/src/analyze.rs:
crates/epl/src/ast.rs:
crates/epl/src/conflict.rs:
crates/epl/src/error.rs:
crates/epl/src/parser.rs:
crates/epl/src/schema.rs:
crates/epl/src/schema_text.rs:
crates/epl/src/token.rs:
