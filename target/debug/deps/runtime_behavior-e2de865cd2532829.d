/root/repo/target/debug/deps/runtime_behavior-e2de865cd2532829.d: crates/actor/tests/runtime_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_behavior-e2de865cd2532829.rmeta: crates/actor/tests/runtime_behavior.rs Cargo.toml

crates/actor/tests/runtime_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
