/root/repo/target/debug/deps/plasma-10eaeb3b11d1ccfb.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/plasma-10eaeb3b11d1ccfb: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
