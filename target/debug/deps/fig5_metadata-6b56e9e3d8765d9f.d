/root/repo/target/debug/deps/fig5_metadata-6b56e9e3d8765d9f.d: crates/bench/benches/fig5_metadata.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_metadata-6b56e9e3d8765d9f.rmeta: crates/bench/benches/fig5_metadata.rs Cargo.toml

crates/bench/benches/fig5_metadata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
