/root/repo/target/debug/deps/fig10_media-bd4bdeed98aa949e.d: crates/bench/benches/fig10_media.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_media-bd4bdeed98aa949e.rmeta: crates/bench/benches/fig10_media.rs Cargo.toml

crates/bench/benches/fig10_media.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
