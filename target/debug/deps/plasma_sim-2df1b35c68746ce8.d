/root/repo/target/debug/deps/plasma_sim-2df1b35c68746ce8.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libplasma_sim-2df1b35c68746ce8.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libplasma_sim-2df1b35c68746ce8.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
