/root/repo/target/debug/deps/serde_json-770c9fcaff45e2c3.d: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-770c9fcaff45e2c3.rlib: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-770c9fcaff45e2c3.rmeta: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs

third_party/serde_json/src/lib.rs:
third_party/serde_json/src/macros.rs:
third_party/serde_json/src/parse.rs:
