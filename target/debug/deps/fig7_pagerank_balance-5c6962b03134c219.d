/root/repo/target/debug/deps/fig7_pagerank_balance-5c6962b03134c219.d: crates/bench/benches/fig7_pagerank_balance.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_pagerank_balance-5c6962b03134c219.rmeta: crates/bench/benches/fig7_pagerank_balance.rs Cargo.toml

crates/bench/benches/fig7_pagerank_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
