/root/repo/target/debug/deps/eplc-ef499b8ad69e9559.d: crates/epl/src/bin/eplc.rs

/root/repo/target/debug/deps/eplc-ef499b8ad69e9559: crates/epl/src/bin/eplc.rs

crates/epl/src/bin/eplc.rs:
