/root/repo/target/debug/deps/plasma_trace-7fa09b54571c7386.d: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_trace-7fa09b54571c7386.rmeta: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/audit.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/record.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
