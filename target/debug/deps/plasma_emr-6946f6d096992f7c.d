/root/repo/target/debug/deps/plasma_emr-6946f6d096992f7c.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/libplasma_emr-6946f6d096992f7c.rlib: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/libplasma_emr-6946f6d096992f7c.rmeta: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
