/root/repo/target/debug/deps/plasma_graph-74911abbbf7c6c27.d: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/debug/deps/libplasma_graph-74911abbbf7c6c27.rlib: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

/root/repo/target/debug/deps/libplasma_graph-74911abbbf7c6c27.rmeta: crates/graph/src/lib.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/pagerank.rs crates/graph/src/partition.rs

crates/graph/src/lib.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/partition.rs:
