/root/repo/target/debug/deps/plasma_suite-b417b67b32635b5c.d: suite/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_suite-b417b67b32635b5c.rmeta: suite/lib.rs Cargo.toml

suite/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
