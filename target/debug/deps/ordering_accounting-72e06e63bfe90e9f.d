/root/repo/target/debug/deps/ordering_accounting-72e06e63bfe90e9f.d: crates/actor/tests/ordering_accounting.rs

/root/repo/target/debug/deps/ordering_accounting-72e06e63bfe90e9f: crates/actor/tests/ordering_accounting.rs

crates/actor/tests/ordering_accounting.rs:
