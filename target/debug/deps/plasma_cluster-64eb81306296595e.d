/root/repo/target/debug/deps/plasma_cluster-64eb81306296595e.d: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_cluster-64eb81306296595e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/instance.rs crates/cluster/src/network.rs crates/cluster/src/resources.rs crates/cluster/src/server.rs crates/cluster/src/topology.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/instance.rs:
crates/cluster/src/network.rs:
crates/cluster/src/resources.rs:
crates/cluster/src/server.rs:
crates/cluster/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
