/root/repo/target/debug/deps/plasma_emr-ea10e129a424b6e7.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/libplasma_emr-ea10e129a424b6e7.rlib: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

/root/repo/target/debug/deps/libplasma_emr-ea10e129a424b6e7.rmeta: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
