/root/repo/target/debug/deps/plasma_trace-c13a0d7c7c505b11.d: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/debug/deps/libplasma_trace-c13a0d7c7c505b11.rlib: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

/root/repo/target/debug/deps/libplasma_trace-c13a0d7c7c505b11.rmeta: crates/trace/src/lib.rs crates/trace/src/audit.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/record.rs

crates/trace/src/lib.rs:
crates/trace/src/audit.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/record.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
