/root/repo/target/debug/deps/emr_behavior-4fb6efc8d1000f93.d: crates/emr/tests/emr_behavior.rs

/root/repo/target/debug/deps/emr_behavior-4fb6efc8d1000f93: crates/emr/tests/emr_behavior.rs

crates/emr/tests/emr_behavior.rs:
