/root/repo/target/debug/deps/plasma_epl-ec1c8f84b871feeb.d: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_epl-ec1c8f84b871feeb.rmeta: crates/epl/src/lib.rs crates/epl/src/analyze.rs crates/epl/src/ast.rs crates/epl/src/conflict.rs crates/epl/src/error.rs crates/epl/src/parser.rs crates/epl/src/schema.rs crates/epl/src/schema_text.rs crates/epl/src/token.rs Cargo.toml

crates/epl/src/lib.rs:
crates/epl/src/analyze.rs:
crates/epl/src/ast.rs:
crates/epl/src/conflict.rs:
crates/epl/src/error.rs:
crates/epl/src/parser.rs:
crates/epl/src/schema.rs:
crates/epl/src/schema_text.rs:
crates/epl/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
