/root/repo/target/debug/deps/plasma_actor-366f4cab01277a2a.d: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs

/root/repo/target/debug/deps/plasma_actor-366f4cab01277a2a: crates/actor/src/lib.rs crates/actor/src/controller.rs crates/actor/src/entry.rs crates/actor/src/ids.rs crates/actor/src/live.rs crates/actor/src/logic.rs crates/actor/src/message.rs crates/actor/src/report.rs crates/actor/src/runtime.rs crates/actor/src/stats.rs

crates/actor/src/lib.rs:
crates/actor/src/controller.rs:
crates/actor/src/entry.rs:
crates/actor/src/ids.rs:
crates/actor/src/live.rs:
crates/actor/src/logic.rs:
crates/actor/src/message.rs:
crates/actor/src/report.rs:
crates/actor/src/runtime.rs:
crates/actor/src/stats.rs:
