/root/repo/target/debug/deps/plasma_bench-b2b4e449939499d9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/plasma_bench-b2b4e449939499d9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
