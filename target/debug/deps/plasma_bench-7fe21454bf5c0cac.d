/root/repo/target/debug/deps/plasma_bench-7fe21454bf5c0cac.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplasma_bench-7fe21454bf5c0cac.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplasma_bench-7fe21454bf5c0cac.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
