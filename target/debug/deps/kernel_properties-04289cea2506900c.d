/root/repo/target/debug/deps/kernel_properties-04289cea2506900c.d: crates/sim/tests/kernel_properties.rs

/root/repo/target/debug/deps/kernel_properties-04289cea2506900c: crates/sim/tests/kernel_properties.rs

crates/sim/tests/kernel_properties.rs:
