/root/repo/target/debug/deps/eplc-203204c4d694a61e.d: crates/epl/src/bin/eplc.rs

/root/repo/target/debug/deps/eplc-203204c4d694a61e: crates/epl/src/bin/eplc.rs

crates/epl/src/bin/eplc.rs:
