/root/repo/target/debug/deps/plasma_sim-de6f74bc19204443.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_sim-de6f74bc19204443.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
