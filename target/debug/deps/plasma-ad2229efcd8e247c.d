/root/repo/target/debug/deps/plasma-ad2229efcd8e247c.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libplasma-ad2229efcd8e247c.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libplasma-ad2229efcd8e247c.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
