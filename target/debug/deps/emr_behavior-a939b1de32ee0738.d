/root/repo/target/debug/deps/emr_behavior-a939b1de32ee0738.d: crates/emr/tests/emr_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libemr_behavior-a939b1de32ee0738.rmeta: crates/emr/tests/emr_behavior.rs Cargo.toml

crates/emr/tests/emr_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
