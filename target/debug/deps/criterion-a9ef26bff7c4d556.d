/root/repo/target/debug/deps/criterion-a9ef26bff7c4d556.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a9ef26bff7c4d556: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
