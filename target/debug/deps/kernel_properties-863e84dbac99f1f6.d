/root/repo/target/debug/deps/kernel_properties-863e84dbac99f1f6.d: crates/sim/tests/kernel_properties.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_properties-863e84dbac99f1f6.rmeta: crates/sim/tests/kernel_properties.rs Cargo.toml

crates/sim/tests/kernel_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
