/root/repo/target/debug/deps/plasma_emr-be46932d4ba50fd7.d: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libplasma_emr-be46932d4ba50fd7.rmeta: crates/emr/src/lib.rs crates/emr/src/action.rs crates/emr/src/baselines.rs crates/emr/src/emr.rs crates/emr/src/eval.rs crates/emr/src/gem.rs crates/emr/src/lem.rs crates/emr/src/view.rs Cargo.toml

crates/emr/src/lib.rs:
crates/emr/src/action.rs:
crates/emr/src/baselines.rs:
crates/emr/src/emr.rs:
crates/emr/src/eval.rs:
crates/emr/src/gem.rs:
crates/emr/src/lem.rs:
crates/emr/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
