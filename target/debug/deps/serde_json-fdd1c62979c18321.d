/root/repo/target/debug/deps/serde_json-fdd1c62979c18321.d: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-fdd1c62979c18321.rmeta: third_party/serde_json/src/lib.rs third_party/serde_json/src/macros.rs third_party/serde_json/src/parse.rs Cargo.toml

third_party/serde_json/src/lib.rs:
third_party/serde_json/src/macros.rs:
third_party/serde_json/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
