/root/repo/target/debug/deps/fig9_estore-021e142e00f7dec9.d: crates/bench/benches/fig9_estore.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_estore-021e142e00f7dec9.rmeta: crates/bench/benches/fig9_estore.rs Cargo.toml

crates/bench/benches/fig9_estore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
