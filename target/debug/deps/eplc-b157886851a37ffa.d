/root/repo/target/debug/deps/eplc-b157886851a37ffa.d: crates/epl/src/bin/eplc.rs Cargo.toml

/root/repo/target/debug/deps/libeplc-b157886851a37ffa.rmeta: crates/epl/src/bin/eplc.rs Cargo.toml

crates/epl/src/bin/eplc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
