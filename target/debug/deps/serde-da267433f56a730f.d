/root/repo/target/debug/deps/serde-da267433f56a730f.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/serde-da267433f56a730f: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
