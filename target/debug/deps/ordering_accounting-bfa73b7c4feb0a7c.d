/root/repo/target/debug/deps/ordering_accounting-bfa73b7c4feb0a7c.d: crates/actor/tests/ordering_accounting.rs Cargo.toml

/root/repo/target/debug/deps/libordering_accounting-bfa73b7c4feb0a7c.rmeta: crates/actor/tests/ordering_accounting.rs Cargo.toml

crates/actor/tests/ordering_accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
