/root/repo/target/debug/deps/eval_semantics-7cb75e41a56610dd.d: crates/emr/tests/eval_semantics.rs

/root/repo/target/debug/deps/eval_semantics-7cb75e41a56610dd: crates/emr/tests/eval_semantics.rs

crates/emr/tests/eval_semantics.rs:
