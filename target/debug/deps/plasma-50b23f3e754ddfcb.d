/root/repo/target/debug/deps/plasma-50b23f3e754ddfcb.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/plasma-50b23f3e754ddfcb: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
