/root/repo/target/debug/deps/rule_coverage-35ae8edf04019d22.d: crates/emr/tests/rule_coverage.rs Cargo.toml

/root/repo/target/debug/deps/librule_coverage-35ae8edf04019d22.rmeta: crates/emr/tests/rule_coverage.rs Cargo.toml

crates/emr/tests/rule_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
