/root/repo/target/debug/examples/media_service-31889fed05abcdbc.d: examples/media_service.rs

/root/repo/target/debug/examples/media_service-31889fed05abcdbc: examples/media_service.rs

examples/media_service.rs:
