/root/repo/target/debug/examples/policy_explorer-a95a6c712ea3632a.d: examples/policy_explorer.rs

/root/repo/target/debug/examples/policy_explorer-a95a6c712ea3632a: examples/policy_explorer.rs

examples/policy_explorer.rs:
