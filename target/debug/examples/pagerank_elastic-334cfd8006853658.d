/root/repo/target/debug/examples/pagerank_elastic-334cfd8006853658.d: examples/pagerank_elastic.rs

/root/repo/target/debug/examples/pagerank_elastic-334cfd8006853658: examples/pagerank_elastic.rs

examples/pagerank_elastic.rs:
