/root/repo/target/debug/examples/tracing_audit-d31355c36797dc80.d: examples/tracing_audit.rs

/root/repo/target/debug/examples/tracing_audit-d31355c36797dc80: examples/tracing_audit.rs

examples/tracing_audit.rs:
