/root/repo/target/debug/examples/media_service-f54464c7e52de7a2.d: examples/media_service.rs Cargo.toml

/root/repo/target/debug/examples/libmedia_service-f54464c7e52de7a2.rmeta: examples/media_service.rs Cargo.toml

examples/media_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
