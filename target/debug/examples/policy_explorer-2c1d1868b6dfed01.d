/root/repo/target/debug/examples/policy_explorer-2c1d1868b6dfed01.d: examples/policy_explorer.rs

/root/repo/target/debug/examples/policy_explorer-2c1d1868b6dfed01: examples/policy_explorer.rs

examples/policy_explorer.rs:
