/root/repo/target/debug/examples/halo_presence-4375faa8bfbfaece.d: examples/halo_presence.rs

/root/repo/target/debug/examples/halo_presence-4375faa8bfbfaece: examples/halo_presence.rs

examples/halo_presence.rs:
