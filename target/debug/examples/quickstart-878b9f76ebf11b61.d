/root/repo/target/debug/examples/quickstart-878b9f76ebf11b61.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-878b9f76ebf11b61: examples/quickstart.rs

examples/quickstart.rs:
