/root/repo/target/debug/examples/live_cluster-c79b09c4574dc3f5.d: examples/live_cluster.rs

/root/repo/target/debug/examples/live_cluster-c79b09c4574dc3f5: examples/live_cluster.rs

examples/live_cluster.rs:
