/root/repo/target/debug/examples/policy_explorer-1c1df3b46de82094.d: examples/policy_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_explorer-1c1df3b46de82094.rmeta: examples/policy_explorer.rs Cargo.toml

examples/policy_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
