/root/repo/target/debug/examples/halo_presence-e863f9786f92a591.d: examples/halo_presence.rs Cargo.toml

/root/repo/target/debug/examples/libhalo_presence-e863f9786f92a591.rmeta: examples/halo_presence.rs Cargo.toml

examples/halo_presence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
