/root/repo/target/debug/examples/halo_presence-e90766bc1aa0063f.d: examples/halo_presence.rs

/root/repo/target/debug/examples/halo_presence-e90766bc1aa0063f: examples/halo_presence.rs

examples/halo_presence.rs:
