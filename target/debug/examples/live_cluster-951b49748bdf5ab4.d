/root/repo/target/debug/examples/live_cluster-951b49748bdf5ab4.d: examples/live_cluster.rs

/root/repo/target/debug/examples/live_cluster-951b49748bdf5ab4: examples/live_cluster.rs

examples/live_cluster.rs:
