/root/repo/target/debug/examples/quickstart-003b73efb57f4109.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-003b73efb57f4109: examples/quickstart.rs

examples/quickstart.rs:
