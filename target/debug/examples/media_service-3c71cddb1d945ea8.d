/root/repo/target/debug/examples/media_service-3c71cddb1d945ea8.d: examples/media_service.rs

/root/repo/target/debug/examples/media_service-3c71cddb1d945ea8: examples/media_service.rs

examples/media_service.rs:
