/root/repo/target/debug/examples/tracing_audit-65d741b64571a9fa.d: examples/tracing_audit.rs Cargo.toml

/root/repo/target/debug/examples/libtracing_audit-65d741b64571a9fa.rmeta: examples/tracing_audit.rs Cargo.toml

examples/tracing_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
