/root/repo/target/debug/examples/pagerank_elastic-d1e3919b8b0540df.d: examples/pagerank_elastic.rs

/root/repo/target/debug/examples/pagerank_elastic-d1e3919b8b0540df: examples/pagerank_elastic.rs

examples/pagerank_elastic.rs:
