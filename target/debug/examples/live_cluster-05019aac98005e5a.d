/root/repo/target/debug/examples/live_cluster-05019aac98005e5a.d: examples/live_cluster.rs Cargo.toml

/root/repo/target/debug/examples/liblive_cluster-05019aac98005e5a.rmeta: examples/live_cluster.rs Cargo.toml

examples/live_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
