/root/repo/target/debug/examples/pagerank_elastic-860e247345b3d3ec.d: examples/pagerank_elastic.rs Cargo.toml

/root/repo/target/debug/examples/libpagerank_elastic-860e247345b3d3ec.rmeta: examples/pagerank_elastic.rs Cargo.toml

examples/pagerank_elastic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
