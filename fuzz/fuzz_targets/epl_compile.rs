//! Fuzz target: the EPL compiler front-end must never panic.
//!
//! Drives `plasma_epl::compile` — lexing, parsing, name resolution,
//! statistic applicability checks, query-plan lowering, and conflict
//! detection — with every checked-in corpus seed plus a budget of
//! deterministic mutations derived from them. Compile *errors* are the
//! expected outcome for most inputs; the property under test is that no
//! input can make the front-end panic, loop, or index out of bounds.
//!
//! The layout follows the conventional `fuzz/fuzz_targets` shape, but the
//! driver is self-contained instead of linking libFuzzer (not vendored):
//! a splitmix64-seeded mutator over the seed corpus, so every run is
//! reproducible from its printed seed. Usage:
//!
//! ```text
//! epl_compile [iterations] [seed]
//! ```
//!
//! Defaults: 10_000 iterations, seed 0x45504C (ASCII "EPL"). A panic
//! anywhere aborts the process with a non-zero exit, which is the failure
//! signal CI keys on.

use std::path::PathBuf;

use plasma_epl::{compile, ActorSchema};

/// Mutation dictionary: the language's keywords, operators and the schema
/// names below, so mutated inputs keep hitting deep front-end paths
/// instead of dying in the lexer.
const DICT: &[&str] = &[
    "and",
    "or",
    "in",
    "ref",
    "call",
    "client",
    "server",
    "true",
    "cpu",
    "mem",
    "net",
    "perc",
    "count",
    "size",
    "reserve",
    "colocate",
    "separate",
    "balance",
    "pin",
    "priority",
    "=>",
    ";",
    "(",
    ")",
    "{",
    "}",
    ".",
    ",",
    ">",
    "<",
    ">=",
    "<=",
    "==",
    "80",
    "0.5",
    "#",
    "//",
    "T0",
    "T1",
    "T2",
    "Folder",
    "File",
    "Partition",
    "r0",
    "files",
    "children",
    "f0",
    "f1",
    "open",
    "read",
];

/// A schema rich enough to resolve every name the corpus seeds use: the
/// bench synth types plus the paper's Fig. 3 folder/file example.
fn fuzz_schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    for t in ["T0", "T1", "T2"] {
        s.actor_type(t).prop("r0").func("f0").func("f1");
    }
    s.actor_type("Folder").prop("files").func("open");
    s.actor_type("File").func("read");
    s.actor_type("Partition").prop("children").func("read");
    s
}

/// Deterministic splitmix64 step.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `0..n` (`n > 0`).
fn below(state: &mut u64, n: usize) -> usize {
    (mix(state) % n as u64) as usize
}

/// Applies 1–4 random byte-level mutations to `base`.
fn mutate(base: &[u8], seeds: &[Vec<u8>], state: &mut u64) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..1 + below(state, 4) {
        match below(state, 6) {
            // Flip one bit.
            0 if !out.is_empty() => {
                let i = below(state, out.len());
                out[i] ^= 1 << below(state, 8);
            }
            // Overwrite one byte with a printable-ish value.
            1 if !out.is_empty() => {
                let i = below(state, out.len());
                out[i] = (below(state, 96) + 32) as u8;
            }
            // Truncate at a random point.
            2 if !out.is_empty() => out.truncate(below(state, out.len())),
            // Duplicate a random slice in place.
            3 if !out.is_empty() => {
                let a = below(state, out.len());
                let b = a + below(state, out.len() - a);
                let dup: Vec<u8> = out[a..b].to_vec();
                let at = below(state, out.len() + 1);
                out.splice(at..at, dup);
            }
            // Insert a dictionary token.
            4 => {
                let tok = DICT[below(state, DICT.len())];
                let at = below(state, out.len() + 1);
                out.splice(at..at, tok.bytes());
            }
            // Splice a random tail of another seed onto a random prefix.
            _ => {
                let other = &seeds[below(state, seeds.len())];
                let cut = below(state, out.len() + 1);
                let from = below(state, other.len() + 1);
                out.truncate(cut);
                out.extend_from_slice(&other[from..]);
            }
        }
        // Keep inputs bounded so pathological growth can't stall a run.
        if out.len() > 1 << 14 {
            out.truncate(1 << 14);
        }
    }
    out
}

/// One fuzz execution: compiling against both a populated and an empty
/// schema (the latter forces the unresolved-name error paths) must return
/// normally — `Ok` and `Err` are both fine, panics are not.
fn run_one(bytes: &[u8], rich: &ActorSchema, empty: &ActorSchema) {
    let src = String::from_utf8_lossy(bytes);
    let _ = compile(&src, rich);
    let _ = compile(&src, empty);
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let iterations: u64 = argv
        .next()
        .map(|a| a.parse().expect("iterations must be a number"))
        .unwrap_or(10_000);
    let mut state: u64 = argv
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0x0045_504C);
    println!("epl_compile: {iterations} iterations, seed {state:#x}");

    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/epl_compile");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", corpus.display()))
        .map(|e| e.expect("readable corpus entry").path())
        .collect();
    entries.sort();
    let seeds: Vec<Vec<u8>> = entries
        .iter()
        .map(|p| std::fs::read(p).expect("readable corpus file"))
        .collect();
    assert!(!seeds.is_empty(), "seed corpus is empty");

    let (rich, empty) = (fuzz_schema(), ActorSchema::new());
    for (path, seed) in entries.iter().zip(&seeds) {
        run_one(seed, &rich, &empty);
        println!("  seed ok: {}", path.file_name().unwrap().to_string_lossy());
    }
    for i in 0..iterations {
        let base = &seeds[below(&mut state, seeds.len())];
        let input = mutate(base, &seeds, &mut state);
        run_one(&input, &rich, &empty);
        if (i + 1) % 10_000 == 0 {
            println!("  {} iterations...", i + 1);
        }
    }
    println!(
        "epl_compile: ok ({} seeds, {iterations} mutations)",
        seeds.len()
    );
}
