//! Fuzz target: no byte stream may panic the wire-frame decoder.
//!
//! Feeds arbitrary bytes to `plasma-net`'s frame decoder two ways — the
//! whole buffer through `decode_prefix`, and byte-by-byte through a
//! [`FrameBuffer`] (the torn-read reassembly path the coordinator and
//! workers actually use) — and checks three properties:
//!
//! 1. **No panic**: every input decodes to frames or a clean `DecodeError`.
//! 2. **Round-trip stability**: any frame the decoder accepts re-encodes to
//!    exactly the bytes it was decoded from (strict decode means no
//!    tolerated trailing garbage, so `encode(decode(b)) == b` on the
//!    consumed prefix).
//! 3. **Reassembly equivalence**: the frames recovered from byte-at-a-time
//!    feeding match the frames recovered from the whole buffer, up to the
//!    first error.
//!
//! Same self-contained driver shape as `epl_compile` / `fault_plan`: a
//! splitmix64-seeded mutator over a checked-in seed corpus, reproducible
//! from the printed seed. Usage:
//!
//! ```text
//! net_frame [iterations] [seed]
//! net_frame gen-corpus      # (re)write the seed corpus and exit
//! ```
//!
//! Defaults: 20000 iterations (each one a decode pass over a mutated
//! stream), seed 0x4652 (ASCII "FR"). A panic anywhere aborts the process
//! with a non-zero exit, which is the failure signal CI keys on.

use std::path::PathBuf;

use plasma_backend::{
    ControlDecision, ControlQuery, ControlReply, Delivery, Execution, MigrationOrder, ServerReport,
};
use plasma_net::{Frame, FrameBuffer, WindowCounters, WIRE_VERSION};

/// Decodes `bytes` as a whole-buffer frame stream: the exact frames, then
/// whether the stream ended in an error (vs. an incomplete tail).
fn decode_whole(bytes: &[u8]) -> (Vec<Frame>, bool) {
    let mut frames = Vec::new();
    let mut rest = bytes;
    loop {
        match Frame::decode_prefix(rest) {
            Ok(Some((frame, consumed))) => {
                // Property 2: strict decode means byte-exact re-encode.
                let reenc = frame.encode_vec();
                assert_eq!(
                    reenc,
                    &rest[..consumed],
                    "frame {frame:?} did not round-trip its own bytes"
                );
                frames.push(frame);
                rest = &rest[consumed..];
            }
            Ok(None) => return (frames, false),
            Err(_) => return (frames, true),
        }
    }
}

/// One fuzz execution over one byte stream.
fn run_one(bytes: &[u8]) {
    let (whole, whole_errored) = decode_whole(bytes);

    // Property 3: byte-at-a-time reassembly sees the same frames.
    let mut fb = FrameBuffer::new();
    let mut torn = Vec::new();
    let mut torn_errored = false;
    'feed: for &b in bytes {
        fb.extend(std::slice::from_ref(&b));
        loop {
            match fb.next() {
                Ok(Some(frame)) => torn.push(frame),
                Ok(None) => break,
                Err(_) => {
                    torn_errored = true;
                    break 'feed;
                }
            }
        }
    }
    assert_eq!(whole, torn, "torn reassembly diverged from whole-buffer");
    assert_eq!(whole_errored, torn_errored, "error position diverged");
}

/// Writes the seed corpus: one valid frame of every kind concatenated into
/// a conversation-shaped stream, plus deliberately-broken variants that
/// seed the mutator near the error paths.
fn gen_corpus(dir: &PathBuf) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    let counters = WindowCounters {
        deliveries: 10,
        executions: 9,
        busy_ns: 9_000,
        delay_ns_total: 10_000,
        delay_ns_max: 5_000,
        delayed: 2,
        reports: 2,
        queries: 1,
        replies: 1,
        decisions: 1,
    };
    let report = ServerReport {
        server: 1,
        vcpus: 4,
        actor_count: 12,
        mem_bytes: 1 << 30,
        total_speed_bits: 4.0f64.to_bits(),
        net_bps_bits: 1e9f64.to_bits(),
        cpu_bits: 0.85f64.to_bits(),
        mem_bits: 0.4f64.to_bits(),
        net_bits: 0.1f64.to_bits(),
    };
    let conversation = [
        Frame::Hello {
            group: 1,
            wire_version: WIRE_VERSION,
        },
        Frame::ServerUp {
            server: 0,
            vcpus: 2,
        },
        Frame::ServerUp {
            server: 1,
            vcpus: 4,
        },
        Frame::Deliver {
            delivery: Delivery {
                server: 0,
                actor: 7,
                bytes: 64,
                remote: false,
            },
            delay_ns: 0,
        },
        Frame::Deliver {
            delivery: Delivery {
                server: 1,
                actor: 8,
                bytes: 128,
                remote: true,
            },
            delay_ns: 5_000,
        },
        Frame::Execute {
            execution: Execution {
                server: 1,
                actor: 8,
                service_ns: 1_000,
            },
        },
        Frame::Report {
            generation: 3,
            report,
        },
        Frame::WindowMark { generation: 3 },
        Frame::WindowAck {
            generation: 3,
            counters,
        },
        Frame::Query {
            query: ControlQuery {
                gem: 0,
                round: 2,
                generation: 3,
                upper_bits: 0.8f64.to_bits(),
                lower_bits: 0.3f64.to_bits(),
                scope: vec![0, 1],
            },
        },
        Frame::QReply {
            reply: ControlReply {
                gem: 0,
                round: 2,
                generation: 3,
                vote_out: true,
                vote_in: false,
                candidates: vec![report],
            },
        },
        Frame::Decision {
            decision: ControlDecision {
                round: 2,
                grow: 1,
                shrink: 0,
                migrations: vec![MigrationOrder {
                    actor: 7,
                    src: 0,
                    dst: 1,
                }],
            },
        },
        Frame::ServerDown { server: 1 },
        Frame::ServerRetired {
            server: 1,
            counters,
        },
        Frame::RoundMark { round: 2 },
        Frame::RoundAck { round: 2 },
        Frame::Shutdown,
    ];
    let mut stream = Vec::new();
    for f in &conversation {
        f.encode(&mut stream);
    }
    std::fs::write(dir.join("conversation.bin"), &stream).expect("write seed");

    // A truncated frame (torn mid-payload).
    let deliver = conversation[3].encode_vec();
    std::fs::write(dir.join("torn.bin"), &deliver[..deliver.len() - 3]).expect("write seed");

    // A bad version byte, then a valid frame that must never be reached.
    let mut bad_version = conversation[7].encode_vec();
    bad_version[4] = 0x7F;
    bad_version.extend_from_slice(&conversation[16].encode_vec());
    std::fs::write(dir.join("bad-version.bin"), &bad_version).expect("write seed");

    // An oversize length prefix.
    let mut oversize = Vec::new();
    oversize.extend_from_slice(&(1u32 << 20).to_be_bytes());
    oversize.extend_from_slice(&[1, 2, 3, 4]);
    std::fs::write(dir.join("oversize.bin"), &oversize).expect("write seed");

    // A length prefix announcing more payload than the kind carries.
    let mut trailing = conversation[16].encode_vec(); // Shutdown: len=2
    trailing[3] = 6; // claim 4 extra payload bytes
    trailing.extend_from_slice(&[0, 0, 0, 0]);
    std::fs::write(dir.join("trailing.bin"), &trailing).expect("write seed");

    // A Hello whose header version is current but whose negotiated
    // `wire_version` field disagrees — exercises the handshake-mismatch
    // path without tripping the frame decoder itself.
    let stale_hello = Frame::Hello {
        group: 0,
        wire_version: WIRE_VERSION.wrapping_sub(1),
    };
    std::fs::write(dir.join("stale-hello.bin"), stale_hello.encode_vec()).expect("write seed");

    println!("net_frame: corpus written to {}", dir.display());
}

/// Deterministic splitmix64 step.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `0..n` (`n > 0`).
fn below(state: &mut u64, n: usize) -> usize {
    (mix(state) % n as u64) as usize
}

/// Applies 1–4 random mutations to `base`. Frames are length-prefixed
/// binary, so besides generic bit/byte damage the interesting mutations
/// re-slice streams at non-frame boundaries and corrupt the header bytes
/// (length, version, kind) specifically.
fn mutate(base: &[u8], seeds: &[Vec<u8>], state: &mut u64) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..1 + below(state, 4) {
        match below(state, 6) {
            // Flip one bit.
            0 if !out.is_empty() => {
                let i = below(state, out.len());
                out[i] ^= 1 << below(state, 8);
            }
            // Overwrite one byte.
            1 if !out.is_empty() => {
                let i = below(state, out.len());
                out[i] = below(state, 256) as u8;
            }
            // Truncate at a random point (mid-frame cuts included).
            2 if !out.is_empty() => out.truncate(below(state, out.len())),
            // Corrupt an early byte — headers live at small offsets, so
            // this concentrates damage on length/version/kind fields.
            3 if !out.is_empty() => {
                let i = below(state, out.len().min(6));
                out[i] = below(state, 256) as u8;
            }
            // Duplicate a random slice in place.
            4 if !out.is_empty() => {
                let a = below(state, out.len());
                let b = a + below(state, out.len() - a);
                let dup: Vec<u8> = out[a..b].to_vec();
                let at = below(state, out.len() + 1);
                out.splice(at..at, dup);
            }
            // Splice a random tail of another seed onto a random prefix.
            _ => {
                let other = &seeds[below(state, seeds.len())];
                let cut = below(state, out.len() + 1);
                let from = below(state, other.len() + 1);
                out.truncate(cut);
                out.extend_from_slice(&other[from..]);
            }
        }
        if out.len() > 1 << 12 {
            out.truncate(1 << 12);
        }
    }
    out
}

fn main() {
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/net_frame");
    let mut argv = std::env::args().skip(1);
    let first = argv.next();
    if first.as_deref() == Some("gen-corpus") {
        gen_corpus(&corpus);
        return;
    }
    let iterations: u64 = first
        .map(|a| a.parse().expect("iterations must be a number"))
        .unwrap_or(20_000);
    let mut state: u64 = argv
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0x4652);
    println!("net_frame: {iterations} iterations, seed {state:#x}");

    let mut entries: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", corpus.display()))
        .map(|e| e.expect("readable corpus entry").path())
        .collect();
    entries.sort();
    let seeds: Vec<Vec<u8>> = entries
        .iter()
        .map(|p| std::fs::read(p).expect("readable corpus file"))
        .collect();
    assert!(!seeds.is_empty(), "seed corpus is empty");

    for (path, seed) in entries.iter().zip(&seeds) {
        run_one(seed);
        println!("  seed ok: {}", path.file_name().unwrap().to_string_lossy());
    }
    for i in 0..iterations {
        let base = &seeds[below(&mut state, seeds.len())];
        let input = mutate(base, &seeds, &mut state);
        run_one(&input);
        if (i + 1) % 5000 == 0 {
            println!("  {} iterations...", i + 1);
        }
    }
    println!(
        "net_frame: ok ({} seeds, {iterations} mutations)",
        seeds.len()
    );
}
