//! Fuzz target: no fault schedule may panic the runtime.
//!
//! Decodes arbitrary bytes into a [`FaultPlan`] — every `FaultKind`
//! variant, arbitrary injection times, overlapping windows, out-of-range
//! subjects — plus a byte-derived [`RecoveryPolicy`], installs it into a
//! small auto-scaling world, and runs the simulation to completion. Crashes
//! during boot, partitions that never heal, aborts with zero windows,
//! GEM indices past the fleet: all must degrade gracefully. The property
//! under test is that no schedule can make the kernel panic, deadlock the
//! event loop, or corrupt the report.
//!
//! Same self-contained driver shape as `epl_compile`: a splitmix64-seeded
//! mutator over a checked-in seed corpus, reproducible from the printed
//! seed. Usage:
//!
//! ```text
//! fault_plan [iterations] [seed]
//! ```
//!
//! Defaults: 500 iterations (each one a full ~120 sim-second run), seed
//! 0x464C54 (ASCII "FLT"). A panic anywhere aborts the process with a
//! non-zero exit, which is the failure signal CI keys on.

use std::path::PathBuf;

use plasma::prelude::*;

/// Bytes per decoded fault record.
const RECORD: usize = 6;
/// Cap on decoded faults, so giant inputs can't stall a run.
const MAX_FAULTS: usize = 48;
/// Simulated horizon; fault times wrap into `0..HORIZON_SECS`.
const HORIZON_SECS: u64 = 120;
/// Servers in the fuzz world (faults may reference a few beyond this).
const SERVERS: u32 = 3;

/// Decodes one 6-byte record into a scheduled fault.
///
/// Layout: `[kind, time, a, b, c, d]`. `kind % 10` selects the variant;
/// the rest parameterize it. Subjects deliberately range a little past the
/// world's servers and GEMs so the out-of-range handling is exercised too.
fn decode_fault(rec: &[u8]) -> (SimTime, FaultKind) {
    let at = SimTime::from_secs(rec[1] as u64 % HORIZON_SECS);
    let (a, b, c, d) = (rec[2], rec[3], rec[4], rec[5]);
    let server = ServerId(a as u32 % (SERVERS + 2));
    let kind = match rec[0] % 10 {
        0 => FaultKind::ServerCrash {
            server,
            restart_after: (b % 2 == 0).then(|| SimDuration::from_secs(c as u64 % 40)),
        },
        1 => FaultKind::Partition {
            // One bit per server: which side of the partition it lands on.
            group: (0..SERVERS + 2)
                .filter(|s| c & (1 << (s % 8)) != 0)
                .map(ServerId)
                .collect(),
            heal_after: (b % 2 == 0).then(|| SimDuration::from_secs(d as u64 % 60)),
        },
        2 => FaultKind::HealPartitions,
        3 => FaultKind::LinkDegrade {
            degradation: LinkDegradation {
                extra_latency: SimDuration::from_millis(b as u64 % 50),
                bandwidth_factor: (c % 100 + 1) as f64 / 100.0,
                drop_per_mille: d as u32 % 250,
            },
            heal_after: (a % 2 == 0).then(|| SimDuration::from_secs(b as u64 % 60)),
        },
        4 => FaultKind::HealLinks,
        5 => FaultKind::MigrationAbort {
            window: SimDuration::from_secs(b as u64 % 45),
            max: c as u32 % 12,
        },
        6 => FaultKind::GemCrash {
            gem: a as usize % 4,
        },
        7 => FaultKind::LemCrash { server },
        8 => FaultKind::ProvisionerStall {
            duration: SimDuration::from_secs(b as u64 % 70),
        },
        _ => FaultKind::SnapshotSkew,
    };
    (at, kind)
}

/// Decodes the whole input: first record doubles as the recovery policy,
/// the rest become the schedule.
fn decode(bytes: &[u8]) -> (FaultPlan, RecoveryPolicy) {
    let mut plan = FaultPlan::new();
    let mut policy = RecoveryPolicy::default();
    let mut chunks = bytes.chunks_exact(RECORD);
    if let Some(head) = chunks.next() {
        policy = RecoveryPolicy {
            heartbeat_period: SimDuration::from_secs(1 + head[0] as u64 % 10),
            heartbeat_timeout: SimDuration::from_secs(1 + head[1] as u64 % 30),
            respawn: head[2] % 2 == 0,
            migration_retry_limit: head[3] as u32 % 6,
            migration_retry_backoff: SimDuration::from_secs(head[4] as u64 % 8),
        };
    }
    for rec in chunks.take(MAX_FAULTS) {
        let (at, kind) = decode_fault(rec);
        plan.push(at, kind);
    }
    (plan, policy)
}

/// Burns a fixed CPU share per request and replies.
struct Burner {
    work: f64,
}

impl ActorLogic for Burner {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

/// Open-loop client: one request every `period`.
struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

/// One fuzz execution: a small elastic world (balance + auto-scale, two
/// GEMs so GEM crashes have a survivor to shuffle onto) runs the decoded
/// schedule to the horizon. Returning at all is the pass condition.
fn run_one(bytes: &[u8]) {
    let (plan, policy) = decode(bytes);

    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("run");
    let compiled = compile(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &schema,
    )
    .expect("fuzz policy compiles");
    let emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            auto_scale: true,
            scale_instance: InstanceType::m1_small(),
            num_gems: 2,
            ..EmrConfig::default()
        },
    );

    let mut rt = Runtime::new(RuntimeConfig {
        seed: 0xFA171,
        limits: ClusterLimits {
            max_servers: 5,
            min_servers: 1,
        },
        elasticity_period: SimDuration::from_secs(10),
        min_residency: SimDuration::from_secs(10),
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let mut servers = Vec::new();
    for _ in 0..SERVERS {
        servers.push(rt.add_server(InstanceType::m1_small()));
    }
    for i in 0..6 {
        let home = servers[i % servers.len()];
        let a = rt.spawn_actor("Worker", Box::new(Burner { work: 0.02 }), 1 << 10, home);
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.install_fault_plan(&plan, policy);
    rt.run_until(SimTime::from_secs(HORIZON_SECS));
    // The report must stay internally consistent even after arbitrary
    // chaos: recovered actors can never exceed lost ones.
    let report = rt.report();
    let lost = report.scalar("chaos.actors_lost").unwrap_or(0.0);
    let recovered = report.scalar("chaos.actors_recovered").unwrap_or(0.0);
    assert!(
        recovered <= lost,
        "recovered {recovered} > lost {lost} under plan {plan:?}"
    );
}

/// Deterministic splitmix64 step.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `0..n` (`n > 0`).
fn below(state: &mut u64, n: usize) -> usize {
    (mix(state) % n as u64) as usize
}

/// Applies 1–4 random mutations to `base`. Binary records rather than
/// text, so instead of a token dictionary the insert mutation splices a
/// whole synthesized record (keeping most inputs schedule-shaped).
fn mutate(base: &[u8], seeds: &[Vec<u8>], state: &mut u64) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..1 + below(state, 4) {
        match below(state, 6) {
            // Flip one bit.
            0 if !out.is_empty() => {
                let i = below(state, out.len());
                out[i] ^= 1 << below(state, 8);
            }
            // Overwrite one byte.
            1 if !out.is_empty() => {
                let i = below(state, out.len());
                out[i] = below(state, 256) as u8;
            }
            // Truncate at a random point (mid-record cuts included).
            2 if !out.is_empty() => out.truncate(below(state, out.len())),
            // Duplicate a random slice in place.
            3 if !out.is_empty() => {
                let a = below(state, out.len());
                let b = a + below(state, out.len() - a);
                let dup: Vec<u8> = out[a..b].to_vec();
                let at = below(state, out.len() + 1);
                out.splice(at..at, dup);
            }
            // Insert a fresh random record at a record boundary.
            4 => {
                let rec: Vec<u8> = (0..RECORD).map(|_| below(state, 256) as u8).collect();
                let at = (below(state, out.len() / RECORD + 1)) * RECORD;
                out.splice(at..at, rec);
            }
            // Splice a random tail of another seed onto a random prefix.
            _ => {
                let other = &seeds[below(state, seeds.len())];
                let cut = below(state, out.len() + 1);
                let from = below(state, other.len() + 1);
                out.truncate(cut);
                out.extend_from_slice(&other[from..]);
            }
        }
        // MAX_FAULTS bounds the decoded plan; this bounds raw memory.
        if out.len() > 1 << 12 {
            out.truncate(1 << 12);
        }
    }
    out
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let iterations: u64 = argv
        .next()
        .map(|a| a.parse().expect("iterations must be a number"))
        .unwrap_or(500);
    let mut state: u64 = argv
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0x0046_4C54);
    println!("fault_plan: {iterations} iterations, seed {state:#x}");

    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/fault_plan");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", corpus.display()))
        .map(|e| e.expect("readable corpus entry").path())
        .collect();
    entries.sort();
    let seeds: Vec<Vec<u8>> = entries
        .iter()
        .map(|p| std::fs::read(p).expect("readable corpus file"))
        .collect();
    assert!(!seeds.is_empty(), "seed corpus is empty");

    for (path, seed) in entries.iter().zip(&seeds) {
        run_one(seed);
        println!("  seed ok: {}", path.file_name().unwrap().to_string_lossy());
    }
    for i in 0..iterations {
        let base = &seeds[below(&mut state, seeds.len())];
        let input = mutate(base, &seeds, &mut state);
        run_one(&input);
        if (i + 1) % 100 == 0 {
            println!("  {} iterations...", i + 1);
        }
    }
    println!(
        "fault_plan: ok ({} seeds, {iterations} mutations)",
        seeds.len()
    );
}
