//! Host crate for the workspace-level integration tests (`tests/`) and the
//! runnable examples (`examples/`).
//!
//! The library itself only re-exports the public API so examples and tests
//! can `use plasma_suite::prelude::*`.

pub use plasma::prelude;
