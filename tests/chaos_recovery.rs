//! End-to-end chaos tests: every fault kind of the plan vocabulary runs
//! through the public `Plasma` builder, and recovery leaves no actor
//! permanently unhosted.

use plasma::prelude::*;
use plasma_sim::SimTime;

struct Worker {
    work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

/// A relay that forwards each request to a fixed peer before replying, so
/// cross-server actor traffic exists for partitions and link faults to hit.
struct Relay {
    peer: ActorId,
}

impl ActorLogic for Relay {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.0005);
        ctx.send_detached(self.peer, "run", 64);
        ctx.reply(16);
    }
}

struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

fn scalar(rt: &Runtime, key: &str) -> f64 {
    rt.report().scalar(key).unwrap_or(0.0)
}

#[test]
fn crash_and_respawn_leaves_no_actor_unhosted() {
    let mut app = Plasma::builder()
        .seed(11)
        .faults(
            FaultPlan::new().crash_server(SimTime::from_secs(10), ServerId(1), None),
            RecoveryPolicy::default(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let servers: Vec<ServerId> = (0..3)
        .map(|_| rt.add_server(InstanceType::m1_small()))
        .collect();
    let actors: Vec<ActorId> = (0..6)
        .map(|i| {
            rt.spawn_actor(
                "Worker",
                Box::new(Worker { work: 0.001 }),
                64 << 10,
                servers[i % servers.len()],
            )
        })
        .collect();
    for &a in &actors {
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(200),
        }));
    }
    app.run_until(SimTime::from_secs(60));
    let rt = app.runtime();
    assert_eq!(scalar(rt, "chaos.servers_crashed"), 1.0);
    assert_eq!(scalar(rt, "chaos.detections"), 1.0, "heartbeat sweep fired");
    assert_eq!(scalar(rt, "chaos.actors_lost"), 2.0);
    assert_eq!(scalar(rt, "chaos.actors_recovered"), 2.0);
    let running = rt.cluster().running_ids();
    assert!(!running.contains(&ServerId(1)), "crashed server stays down");
    for &a in &actors {
        assert!(rt.actor_alive(a), "actor {a:?} survived via respawn");
        assert!(
            running.contains(&rt.actor_server(a)),
            "actor {a:?} must end on a running server"
        );
    }
    // Crash-to-declaration is the configured heartbeat timeout (sweep
    // granularity rounds it up to the next period boundary).
    let detect = scalar(rt, "chaos.detect_latency_max_s");
    assert!((10.0..=15.0).contains(&detect), "detect latency {detect}");
}

#[test]
fn restart_before_detection_recovers_in_place() {
    let mut app = Plasma::builder()
        .seed(12)
        .faults(
            FaultPlan::new().crash_server(
                SimTime::from_secs(10),
                ServerId(1),
                Some(SimDuration::from_secs(3)),
            ),
            RecoveryPolicy::default(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let a0 = rt.spawn_actor("Worker", Box::new(Worker { work: 0.001 }), 64 << 10, s0);
    let a1 = rt.spawn_actor("Worker", Box::new(Worker { work: 0.001 }), 64 << 10, s1);
    for &a in &[a0, a1] {
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(200),
        }));
    }
    app.run_until(SimTime::from_secs(120));
    let rt = app.runtime();
    assert_eq!(scalar(rt, "chaos.servers_restarted"), 1.0);
    assert_eq!(
        scalar(rt, "chaos.detections"),
        0.0,
        "reboot beat the failure detector"
    );
    assert_eq!(scalar(rt, "chaos.actors_recovered"), 1.0);
    assert!(rt.cluster().running_ids().contains(&s1), "server rebooted");
    assert!(rt.actor_alive(a1));
    assert_eq!(rt.actor_server(a1), s1, "in-place recovery keeps placement");
}

#[test]
fn partition_severs_traffic_until_heal() {
    let mut app = Plasma::builder()
        .seed(13)
        .faults(
            FaultPlan::new().partition(
                SimTime::from_secs(5),
                [ServerId(1)],
                Some(SimDuration::from_secs(10)),
            ),
            RecoveryPolicy::default(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let far = rt.spawn_actor("Worker", Box::new(Worker { work: 0.0005 }), 64 << 10, s1);
    let relay = rt.spawn_actor("Relay", Box::new(Relay { peer: far }), 64 << 10, s0);
    rt.add_client(Box::new(Pulse {
        target: relay,
        period: SimDuration::from_millis(100),
    }));
    app.run_until(SimTime::from_secs(30));
    let rt = app.runtime();
    let lost = scalar(rt, "chaos.messages_lost_partition");
    assert!(lost > 0.0, "cross-partition messages were dropped");
    // Roughly 10 s of a 100 ms pulse crosses the cut; everything outside
    // the window flows, so losses stay well below the total sent.
    assert!(lost < 150.0, "partition healed: lost only {lost}");
    assert!(rt.report().replies > 100, "relay kept replying locally");
}

#[test]
fn aborted_migration_retries_until_it_lands() {
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: 14,
            min_residency: SimDuration::ZERO,
            ..RuntimeConfig::default()
        })
        .faults(
            FaultPlan::new().abort_migrations(SimTime::ZERO, SimDuration::from_secs(120), 1),
            RecoveryPolicy::default(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let big = rt.spawn_actor("Worker", Box::new(Worker { work: 0.001 }), 64 << 20, s0);
    rt.migrate(big, s1).unwrap();
    app.run_until(SimTime::from_secs(120));
    let rt = app.runtime();
    assert_eq!(scalar(rt, "chaos.migrations_aborted"), 1.0);
    assert_eq!(scalar(rt, "chaos.migration_retries"), 1.0);
    assert!(rt.actor_alive(big));
    assert_eq!(
        rt.actor_server(big),
        s1,
        "the retry completed the move after the budgeted abort"
    );
}

#[test]
fn provisioner_stall_rejects_requests_for_its_duration() {
    let mut app = Plasma::builder()
        .seed(15)
        .faults(
            FaultPlan::new().stall_provisioner(SimTime::ZERO, SimDuration::from_secs(10)),
            RecoveryPolicy::default(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    rt.add_server(InstanceType::m1_small());
    app.run_until(SimTime::from_secs(5));
    assert!(
        app.runtime_mut()
            .request_server(InstanceType::m1_small())
            .is_none(),
        "provisioning fails mid-stall"
    );
    app.run_until(SimTime::from_secs(15));
    assert!(
        app.runtime_mut()
            .request_server(InstanceType::m1_small())
            .is_some(),
        "provisioning resumes after the stall"
    );
}

#[test]
fn link_degradation_inflates_latency_and_drops() {
    let run = |faults: FaultPlan| {
        let mut app = Plasma::builder()
            .seed(16)
            .faults(faults, RecoveryPolicy::default())
            .build()
            .unwrap();
        let rt = app.runtime_mut();
        let s0 = rt.add_server(InstanceType::m1_small());
        let s1 = rt.add_server(InstanceType::m1_small());
        let far = rt.spawn_actor("Worker", Box::new(Worker { work: 0.0005 }), 64 << 10, s1);
        let relay = rt.spawn_actor("Relay", Box::new(Relay { peer: far }), 64 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: relay,
            period: SimDuration::from_millis(100),
        }));
        app.run_until(SimTime::from_secs(30));
        (
            scalar(app.runtime(), "chaos.messages_dropped_link"),
            app.report().remote_messages,
        )
    };
    // A plan whose only entry lies beyond the horizon is effectively
    // fault-free but still exports chaos scalars for the comparison.
    let (clean_drops, clean_remote) =
        run(FaultPlan::new()
            .stall_provisioner(SimTime::from_secs(3_600), SimDuration::from_secs(1)));
    let degraded = FaultPlan::new().degrade_links(
        SimTime::from_secs(5),
        LinkDegradation {
            extra_latency: SimDuration::from_millis(5),
            bandwidth_factor: 0.25,
            drop_per_mille: 100,
        },
        Some(SimDuration::from_secs(15)),
    );
    let (dropped, degraded_remote) = run(degraded);
    assert_eq!(clean_drops, 0.0);
    assert!(dropped > 0.0, "10% drop over 15 s must lose messages");
    assert!(
        degraded_remote < clean_remote,
        "dropped messages never arrive: {degraded_remote} vs {clean_remote}"
    );
}

#[test]
fn gem_crash_leaves_policy_running_on_survivor() {
    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("run");
    let mut app = Plasma::builder()
        .seed(17)
        .emr_config(EmrConfig {
            num_gems: 2,
            ..EmrConfig::default()
        })
        .policy(
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
            &schema,
        )
        .faults(
            FaultPlan::new().crash_gem(SimTime::from_secs(20), 1),
            RecoveryPolicy::default(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let _s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..4 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.02 }), 1 << 16, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    app.run_until(SimTime::from_secs(120));
    let rt = app.runtime();
    assert_eq!(scalar(rt, "chaos.faults_injected"), 1.0);
    assert!(
        rt.report().replies > 500,
        "data plane unaffected by the GEM loss"
    );
    // The surviving GEM keeps executing the balance rule.
    assert!(
        !rt.report().migrations.is_empty(),
        "the survivor still rebalances the hot server"
    );
}
