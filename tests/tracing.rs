//! End-to-end tracing integration: run the Metadata Server colocate
//! scenario (§3.3) with tracing enabled, then interrogate the trace.
//!
//! Covers the decision audit (`explain` reconstructs the complete
//! rule → plan → admission → migration chain for a migrated actor),
//! trace determinism (same seed ⇒ byte-identical JSONL), and exporter
//! validity (the Chrome trace parses as JSON and lands under
//! `target/plasma-results/`).

use plasma::prelude::*;

struct Folder {
    files: Vec<ActorId>,
    next_responder: usize,
}

impl ActorLogic for Folder {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.001);
        if self.files.is_empty() {
            ctx.reply(256);
            return;
        }
        let responder = self.files[self.next_responder % self.files.len()];
        self.next_responder += 1;
        ctx.send(responder, "read", 128);
        for &f in &self.files {
            if f != responder {
                ctx.send_detached(f, "read", 128);
            }
        }
    }
}

struct File;

impl ActorLogic for File {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.0016);
        if msg.corr.is_some() {
            ctx.reply(512);
        }
    }
}

struct MetadataClient {
    folders: Vec<ActorId>,
}

impl MetadataClient {
    fn fire(&mut self, ctx: &mut ClientCtx<'_>) {
        let target = if ctx.rng().chance(0.5) {
            self.folders[0]
        } else {
            let rest = self.folders.len() - 1;
            self.folders[1 + ctx.rng().index(rest)]
        };
        ctx.request(target, "open", 96);
    }
}

impl ClientLogic for MetadataClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.fire(ctx);
    }
    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        ctx.set_timer(SimDuration::from_millis(60), 0);
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        self.fire(ctx);
    }
}

fn schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Folder").prop("files").func("open");
    schema.actor_type("File").func("read");
    schema
}

const POLICY: &str = "server.cpu.perc > 80 and \
     client.call(Folder(fo).open).perc > 40 and \
     File(fi) in ref(fo.files) => \
     reserve(fo, cpu); colocate(fo, fi);";

/// Builds the §5.3 hot-folder setup: every actor starts on `s0`, a second
/// server sits idle, and half of all requests hit folder 0.
fn build(seed: u64, trace: TraceConfig) -> (Plasma, Vec<ActorId>, ServerId) {
    let period = SimDuration::from_secs(80);
    let mut app = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed,
            elasticity_period: period,
            min_residency: period,
            ..RuntimeConfig::default()
        })
        .policy(POLICY, &schema())
        .tracing(trace)
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let _s1 = rt.add_server(InstanceType::m1_small());
    let mut folders = Vec::new();
    for _ in 0..4 {
        let files: Vec<ActorId> = (0..8)
            .map(|_| rt.spawn_actor("File", Box::new(File), 256 << 10, s0))
            .collect();
        let folder = rt.spawn_actor(
            "Folder",
            Box::new(Folder {
                files: files.clone(),
                next_responder: 0,
            }),
            128 << 10,
            s0,
        );
        for f in files {
            rt.actor_add_ref(folder, "files", f);
        }
        folders.push(folder);
    }
    for _ in 0..16 {
        rt.add_client(Box::new(MetadataClient {
            folders: folders.clone(),
        }));
    }
    (app, folders, s0)
}

fn kind_name(e: &TraceEvent) -> &'static str {
    e.kind.name()
}

#[test]
fn explain_reconstructs_full_decision_chain() {
    // Messages are the high-volume family; excluding them keeps the whole
    // decision history inside the ring buffer for the entire run.
    let (mut app, folders, s0) = build(11, TraceConfig::default().without(Category::Message));
    app.run_until(SimTime::from_secs(200));

    let hot = folders[0];
    let rt = app.runtime();
    let hot_server = rt.actor_server(hot);
    assert_ne!(hot_server, s0, "hot folder moved off the loaded server");

    // The folder's audit chain: the GEM's reserve rule fired, the plan
    // proposed the move, the destination admitted it, and the runtime
    // migrated the actor.
    let chain = app.tracer().explain(hot.0, app.runtime().now());
    let kinds: Vec<&str> = chain.iter().map(kind_name).collect();
    assert_eq!(
        kinds,
        vec![
            "RuleEvaluated",
            "RuleFired",
            "PlanProposed",
            "QuerySent",
            "QueryReply",
            "MigrationStart",
            "MigrationComplete",
        ],
        "full causal chain reconstructed"
    );
    for pair in chain.windows(2) {
        assert!(pair[0].at <= pair[1].at, "chain is causally ordered");
        assert_eq!(pair[1].parent, Some(pair[0].id), "parent links chain up");
    }
    match &chain[4].kind {
        TraceEventKind::QueryReply { admitted, .. } => assert!(*admitted, "move was admitted"),
        other => panic!("expected QueryReply, got {other:?}"),
    }
    match &chain[6].kind {
        TraceEventKind::MigrationComplete { actor, dst, .. } => {
            assert_eq!(*actor, hot.0);
            assert_eq!(*dst, hot_server.0);
        }
        other => panic!("expected MigrationComplete, got {other:?}"),
    }

    // A colocated file's chain roots at the LEM's colocate rule instead.
    let file = rt.actor_refs(hot, "files")[0];
    assert_eq!(
        rt.actor_server(file),
        hot_server,
        "file followed the folder"
    );
    let file_chain = app.tracer().explain(file.0, app.runtime().now());
    assert_eq!(
        file_chain.last().map(kind_name),
        Some("MigrationComplete"),
        "file migration traced"
    );
    assert!(
        file_chain
            .iter()
            .any(|e| e.component == Component::Lem && kind_name(e) == "RuleFired"),
        "file move explained by a LEM interaction rule"
    );

    // The human-readable rendering has one line per hop.
    let text = render_explanation(&chain);
    assert_eq!(text.lines().count(), chain.len());
}

#[test]
fn traces_are_byte_identical_across_identical_runs() {
    // Stop shortly after the first elasticity round: with every category on
    // (messages included) the default ring still holds the migration events.
    let run = || {
        let (mut app, _, _) = build(11, TraceConfig::default());
        app.run_until(SimTime::from_secs(90));
        app.tracer().jsonl()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert!(
        a.contains("\"kind\":\"MigrationComplete\""),
        "trace captured the elasticity round"
    );
    assert_eq!(a, b, "same seed produces a byte-identical trace");
}

#[test]
fn chrome_trace_is_valid_json_and_lands_in_results_dir() {
    let (mut app, _, _) = build(11, TraceConfig::default().without(Category::Message));
    app.run_until(SimTime::from_secs(120));
    let chrome = app.tracer().chrome_trace();

    let value = serde_json::from_str(&chrome).expect("chrome trace parses as JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array present");
    assert!(events.len() > 4, "more than the process-name metadata");
    // Every entry carries the mandatory trace_event fields.
    for e in events {
        let obj = e.as_object().expect("event is an object");
        assert!(obj.contains_key("ph"));
        assert!(obj.contains_key("pid"));
        assert!(obj.contains_key("name"));
    }

    let dir = results_dir();
    let chrome_path = write_under(&dir, "tracing-test.chrome.json", &chrome).unwrap();
    let jsonl_path = write_under(&dir, "tracing-test.jsonl", &app.tracer().jsonl()).unwrap();
    assert!(chrome_path.exists());
    assert!(jsonl_path.exists());
}
