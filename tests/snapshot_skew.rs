//! Regression test for plan/apply snapshot-generation skew.
//!
//! An EMR round plans against the profiling snapshot visible at the tick
//! and applies one control round-trip later. If a profiling window closes
//! in between, the apply phase reads a *newer* generation than the plan —
//! `emr.snapshot_skew_rounds` counts exactly those rounds. The chaos
//! engine's `skew_snapshot` fault forces such a window close on demand, so
//! the skew path is testable without relying on cadence accidents.
//!
//! The cadence here is chosen so no skew occurs naturally: a 7-second
//! profiling window never lands on the 60-second elasticity boundary
//! (under the default 1 s window, the tick wins the FIFO tie at every
//! shared boundary and *every* applied round skews — see the plasma-emr
//! snapshot-sharing test).

use plasma::prelude::*;
use plasma_sim::SimTime;

struct Worker {
    work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

/// An unbalanced 4-server cluster under a balance policy, profiled on a
/// 7-second window so windows never coincide with elasticity ticks.
/// Returns `(rounds_applied, snapshot_skew_rounds, chaos_snapshot_skews)`.
fn run(faults: Option<FaultPlan>) -> (f64, Option<f64>, Option<f64>) {
    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("run");
    let mut builder = Plasma::builder()
        .runtime_config(RuntimeConfig {
            seed: 7,
            profile_window: SimDuration::from_secs(7),
            ..RuntimeConfig::default()
        })
        .policy(
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
            &schema,
        );
    if let Some(plan) = faults {
        builder = builder.faults(plan, RecoveryPolicy::default());
    }
    let mut app = builder.build().expect("policy compiles");
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    for _ in 0..3 {
        rt.add_server(InstanceType::m1_small());
    }
    for _ in 0..6 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.03 }), 1 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(130));
    let report = rt.report();
    (
        report.scalar("emr.rounds_applied").unwrap_or(0.0),
        report.scalar("emr.snapshot_skew_rounds"),
        report.scalar("chaos.snapshot_skews"),
    )
}

#[test]
fn no_skew_when_windows_avoid_the_tick() {
    let (rounds, skews, _) = run(None);
    assert!(
        rounds >= 1.0,
        "the 60 s and 120 s ticks must apply: {rounds}"
    );
    assert_eq!(
        skews,
        Some(0.0),
        "a 7 s window never closes inside a plan/apply gap on its own"
    );
}

#[test]
fn injected_window_close_between_plan_and_apply_skews_the_round() {
    // The 60 s tick plans at t=60 s and applies one LEM->GEM->LEM control
    // round-trip later (2 x 500 us under the default network). Forcing a
    // window close at t=60 s + 500 us lands squarely in that gap.
    let plan = FaultPlan::new().skew_snapshot(SimTime::from_micros(60_000_500));
    let (rounds, skews, chaos_skews) = run(Some(plan));
    assert_eq!(
        chaos_skews,
        Some(1.0),
        "the chaos engine must record the forced window close"
    );
    let skews = skews.expect("skew scalar exported");
    assert!(
        skews >= 1.0,
        "the round spanning the forced close must observe a newer generation"
    );
    // The fault only perturbs profiling-generation bookkeeping, never the
    // decision inputs themselves; the run still applies its rounds.
    assert!(rounds >= 1.0);
}
