//! Failure injection: GEM crashes, decommission races, actor removal races,
//! and malformed policies.

use plasma::prelude::*;
use plasma_epl::compile;
use plasma_sim::SimTime;

struct Worker {
    work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

struct Driver {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Driver {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

fn worker_schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    s.actor_type("Worker").func("run");
    s
}

#[test]
fn all_gems_failed_still_serves_traffic() {
    // With every GEM dead, resource rules stop executing but the
    // application keeps running untouched (the EMR never blocks the data
    // plane).
    let compiled = compile(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &worker_schema(),
    )
    .unwrap();
    let mut emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            num_gems: 2,
            ..EmrConfig::default()
        },
    );
    emr.fail_gem(0);
    emr.fail_gem(1);
    assert_eq!(emr.alive_gems(), 0);
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 5,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let _s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..4 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.02 }), 1 << 16, s0);
        rt.add_client(Box::new(Driver {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(150));
    assert!(rt.report().replies > 1_000, "traffic kept flowing");
    assert!(
        rt.report().migrations.is_empty(),
        "no GEM, no resource moves"
    );
}

#[test]
fn decommission_refused_while_migration_inbound() {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 6,
        min_residency: SimDuration::ZERO,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let s2 = rt.add_server(InstanceType::m1_small());
    let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.01 }), 64 << 20, s0);
    rt.migrate(w, s1).unwrap();
    // The transfer of 64 MB is still in flight: s1 must refuse to die.
    assert_eq!(
        rt.decommission_server(s1),
        Err(plasma_actor::DecommissionError::InboundMigration),
        "inbound migration protects s1"
    );
    assert_eq!(
        rt.decommission_server(s2),
        Ok(()),
        "unrelated empty server may die"
    );
    rt.run_until(SimTime::from_secs(30));
    assert_eq!(rt.actor_server(w), s1);
}

#[test]
fn remove_actor_mid_service_and_mid_migration() {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 7,
        min_residency: SimDuration::ZERO,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    // Mid-service removal: long-running handler.
    let slow = rt.spawn_actor("Worker", Box::new(Worker { work: 2.0 }), 1 << 16, s0);
    rt.inject(slow, "run", 8, None);
    rt.run_until(SimTime::from_secs(1)); // Handler busy until t=2.
    assert!(rt.remove_actor(slow));
    assert!(!rt.remove_actor(slow), "double remove rejected");
    rt.run_until(SimTime::from_secs(5));
    assert!(!rt.actor_alive(slow));
    // Mid-migration removal: large state, slow transfer.
    let big = rt.spawn_actor("Worker", Box::new(Worker { work: 0.001 }), 512 << 20, s0);
    rt.migrate(big, s1).unwrap();
    assert!(rt.remove_actor(big));
    rt.run_until(SimTime::from_secs(60));
    assert!(!rt.actor_alive(big));
    assert_eq!(rt.actor_count_on(s0), 0);
    assert_eq!(rt.actor_count_on(s1), 0);
}

#[test]
fn messages_to_removed_actors_are_dropped_not_fatal() {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 8,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.001 }), 64, s0);
    rt.add_client(Box::new(Driver {
        target: w,
        period: SimDuration::from_millis(50),
    }));
    rt.run_until(SimTime::from_secs(2));
    rt.remove_actor(w);
    rt.run_until(SimTime::from_secs(4));
    let report = rt.report();
    assert!(
        report.dropped_messages > 10,
        "requests after removal dropped"
    );
    assert!(report.replies > 0, "requests before removal were served");
}

#[test]
fn malformed_policies_fail_compilation_cleanly() {
    let schema = worker_schema();
    for bad in [
        "server.cpu.perc > 80",                           // no behavior
        "=> balance({Worker}, cpu);",                     // no condition
        "server.cpu.perc > 80 => balance({Ghost}, cpu);", // unknown type
        "server.gpu.perc > 80 => pin(Worker);",           // unknown resource
        "server.cpu.count > 80 => pin(Worker);",          // bad statistic
        "server.cpu.perc > 800 => pin(Worker);",          // bad bound
        "true => pin(zorp);",                             // unknown name
    ] {
        assert!(compile(bad, &schema).is_err(), "should reject: {bad}");
    }
}

#[test]
fn boot_race_actor_placement_waits_for_running_server() {
    // Spawning onto a still-booting server must be impossible through the
    // placement path: placed actors land on running servers only.
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 9,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let booting = rt.request_server(InstanceType::m1_small()).unwrap();
    let a = rt.spawn_placed("Worker", Box::new(Worker { work: 0.001 }), 64, Some(s0));
    assert_eq!(rt.actor_server(a), s0);
    assert!(!rt.cluster().server(booting).is_running());
    rt.run_until(SimTime::from_secs(120));
    assert!(rt.cluster().server(booting).is_running());
}
