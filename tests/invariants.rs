//! Whole-system conservation and sanity invariants, property-tested over
//! random topologies and workloads.

use plasma::prelude::*;
use plasma_sim::SimTime;
use proptest::prelude::*;

struct Echo {
    work: f64,
    fanout: Option<ActorId>,
}

impl ActorLogic for Echo {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(self.work);
        if let Some(peer) = self.fanout {
            if msg.corr.is_some() {
                ctx.send(peer, "relay", 64);
                return;
            }
        }
        if msg.corr.is_some() {
            ctx.reply(32);
        }
    }
}

struct Loop {
    target: ActorId,
    remaining: u64,
}

impl ClientLogic for Loop {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.request(self.target, "run", 64);
        }
    }
    fn on_reply(&mut self, ctx: &mut ClientCtx<'_>, _r: u64, _l: SimDuration, _p: Option<Payload>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.request(self.target, "run", 64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No request is ever lost: every issued request is answered, across
    /// arbitrary topologies, worker costs, and periodic migrations.
    #[test]
    fn requests_conserved_under_migration(
        seed in 0u64..500,
        servers in 2usize..5,
        chains in 1usize..5,
        work_us in 100u64..5_000,
        requests in 10u64..60,
    ) {
        let mut rt = Runtime::new(RuntimeConfig {
            seed,
            min_residency: SimDuration::ZERO,
            ..RuntimeConfig::default()
        });
        let server_ids: Vec<ServerId> = (0..servers)
            .map(|_| rt.add_server(InstanceType::m1_small()))
            .collect();
        let mut heads = Vec::new();
        for i in 0..chains {
            let tail = rt.spawn_actor(
                "Tail",
                Box::new(Echo { work: work_us as f64 / 1e6, fanout: None }),
                1 << 16,
                server_ids[i % servers],
            );
            let head = rt.spawn_actor(
                "Head",
                Box::new(Echo { work: work_us as f64 / 2e6, fanout: Some(tail) }),
                1 << 16,
                server_ids[(i + 1) % servers],
            );
            rt.add_client(Box::new(Loop { target: head, remaining: requests }));
            heads.push((head, tail));
        }
        // Stir the pot: migrate actors round-robin every simulated second.
        for round in 0..10u64 {
            rt.run_until(SimTime::from_secs(round + 1));
            for (k, &(head, tail)) in heads.iter().enumerate() {
                let dst = server_ids[(round as usize + k) % servers];
                let _ = rt.migrate(head, dst);
                let _ = rt.migrate(tail, dst);
            }
        }
        rt.run_until(SimTime::from_secs(400));
        let report = rt.report();
        prop_assert_eq!(report.requests, requests * chains as u64);
        prop_assert_eq!(report.replies, report.requests, "every request answered");
        prop_assert_eq!(report.dropped_messages, 0);
        prop_assert_eq!(report.orphan_replies, 0);
    }

    /// Each actor is resident on exactly one running server, and per-server
    /// actor counts are consistent with per-actor server records.
    #[test]
    fn placement_is_a_partition(
        seed in 0u64..500,
        servers in 1usize..6,
        actors in 1usize..40,
    ) {
        let mut rt = Runtime::new(RuntimeConfig { seed, ..RuntimeConfig::default() });
        let server_ids: Vec<ServerId> = (0..servers)
            .map(|_| rt.add_server(InstanceType::m1_small()))
            .collect();
        let mut rng = DetRng::new(seed);
        let ids: Vec<ActorId> = (0..actors)
            .map(|_| {
                let s = *rng.choose(&server_ids);
                rt.spawn_actor("A", Box::new(Echo { work: 0.0, fanout: None }), 64, s)
            })
            .collect();
        rt.run_until(SimTime::from_secs(5));
        let mut total = 0usize;
        for &s in &server_ids {
            let on_s = rt.actors_on(s);
            total += on_s.len();
            for a in on_s {
                prop_assert_eq!(rt.actor_server(a), s);
            }
        }
        prop_assert_eq!(total, ids.len());
    }

    /// Server utilization snapshots stay within [0, 1] whatever the load.
    #[test]
    fn utilization_bounded(
        seed in 0u64..500,
        load_us in 100u64..50_000,
        clients in 1usize..12,
    ) {
        let mut rt = Runtime::new(RuntimeConfig { seed, ..RuntimeConfig::default() });
        let s = rt.add_server(InstanceType::m1_small());
        let a = rt.spawn_actor(
            "A",
            Box::new(Echo { work: load_us as f64 / 1e6, fanout: None }),
            64,
            s,
        );
        for _ in 0..clients {
            rt.add_client(Box::new(Loop { target: a, remaining: u64::MAX }));
        }
        rt.run_until(SimTime::from_secs(10));
        let snap = rt.snapshot();
        let usage = snap.server(s).unwrap().usage;
        prop_assert!((0.0..=1.0).contains(&usage.cpu()));
        prop_assert!((0.0..=1.0).contains(&usage.mem()));
        prop_assert!((0.0..=1.0).contains(&usage.net()));
        for actor in &snap.actors {
            prop_assert!((0.0..=1.0).contains(&actor.cpu_share));
        }
    }
}

/// Deterministic replay of the input recorded in
/// `tests/invariants.proptest-regressions` (`seed = 0, load_us = 6915,
/// clients = 3`). Three closed-loop clients against one ~6.9 ms/request actor
/// saturate an `m1_small`, so the snapshot must report *exactly* full CPU —
/// the boundary of the `[0, 1]` invariant, where an unclamped utilization sum
/// historically overshot. Pinned here so the case runs on every toolchain,
/// including the offline proptest stand-in, which does not read regression
/// files.
#[test]
fn utilization_bounded_regression_saturated_server() {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 0,
        ..RuntimeConfig::default()
    });
    let s = rt.add_server(InstanceType::m1_small());
    let a = rt.spawn_actor(
        "A",
        Box::new(Echo {
            work: 6915.0 / 1e6,
            fanout: None,
        }),
        64,
        s,
    );
    for _ in 0..3 {
        rt.add_client(Box::new(Loop {
            target: a,
            remaining: u64::MAX,
        }));
    }
    rt.run_until(SimTime::from_secs(10));
    let snap = rt.snapshot();
    let usage = snap.server(s).unwrap().usage;
    assert_eq!(
        usage.cpu(),
        1.0,
        "saturated server reports exactly full CPU"
    );
    assert!((0.0..=1.0).contains(&usage.mem()));
    assert!((0.0..=1.0).contains(&usage.net()));
    for actor in &snap.actors {
        assert!((0.0..=1.0).contains(&actor.cpu_share));
    }
}
