//! Cross-crate integration: EPL source -> compiled policy -> EMR -> observable
//! runtime effects, all through the public `plasma` facade.

use plasma::prelude::*;
use plasma_sim::SimTime;

struct Burner {
    work: f64,
}

impl ActorLogic for Burner {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

struct Driver {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Driver {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, "work", 64);
        ctx.set_timer(self.period, 0);
    }
}

fn schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    s.actor_type("Hot").func("work");
    s.actor_type("Cold").func("work");
    s
}

#[test]
fn end_to_end_balance_through_facade() {
    let mut app = Plasma::builder()
        .seed(2024)
        .policy(
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Hot}, cpu);",
            &schema(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..4 {
        let a = rt.spawn_actor("Hot", Box::new(Burner { work: 0.035 }), 1 << 16, s0);
        rt.add_client(Box::new(Driver {
            target: a,
            period: SimDuration::from_millis(100),
        }));
    }
    app.run_until(SimTime::from_secs(240));
    let rt = app.runtime();
    assert_eq!(rt.actor_count_on(s0) + rt.actor_count_on(s1), 4);
    assert!(rt.actor_count_on(s1) >= 1, "balance moved work to s1");
    assert!(!app.report().migrations.is_empty());
    assert_eq!(app.report().dropped_messages, 0);
}

#[test]
fn type_scoped_balance_does_not_touch_other_types() {
    let mut app = Plasma::builder()
        .seed(7)
        .policy(
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Hot}, cpu);",
            &schema(),
        )
        .build()
        .unwrap();
    let rt = app.runtime_mut();
    let s0 = rt.add_server(InstanceType::m1_small());
    let _s1 = rt.add_server(InstanceType::m1_small());
    // Cold actors also burn CPU but are not in the balance set.
    let mut cold = Vec::new();
    for _ in 0..2 {
        let a = rt.spawn_actor("Cold", Box::new(Burner { work: 0.03 }), 1 << 16, s0);
        rt.add_client(Box::new(Driver {
            target: a,
            period: SimDuration::from_millis(100),
        }));
        cold.push(a);
    }
    for _ in 0..2 {
        let a = rt.spawn_actor("Hot", Box::new(Burner { work: 0.03 }), 1 << 16, s0);
        rt.add_client(Box::new(Driver {
            target: a,
            period: SimDuration::from_millis(100),
        }));
    }
    app.run_until(SimTime::from_secs(240));
    let rt = app.runtime();
    for &c in &cold {
        assert_eq!(rt.actor_server(c), s0, "Cold actors never migrate");
    }
}

#[test]
fn warnings_surface_but_do_not_block() {
    let app = Plasma::builder()
        .policy(
            "true => pin(Hot);\nserver.cpu.perc > 80 => balance({Hot}, cpu);",
            &schema(),
        )
        .build()
        .unwrap();
    assert_eq!(app.warnings().len(), 1);
    assert!(app.warnings()[0].message.contains("pinned"));
}

#[test]
fn deterministic_full_stack_rerun() {
    let run_once = || {
        let mut app = Plasma::builder()
            .seed(99)
            .policy(
                "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Hot}, cpu);",
                &schema(),
            )
            .build()
            .unwrap();
        let rt = app.runtime_mut();
        let s0 = rt.add_server(InstanceType::m1_small());
        let _s1 = rt.add_server(InstanceType::m1_small());
        for _ in 0..4 {
            let a = rt.spawn_actor("Hot", Box::new(Burner { work: 0.03 }), 1 << 16, s0);
            rt.add_client(Box::new(Driver {
                target: a,
                period: SimDuration::from_millis(90),
            }));
        }
        app.run_until(SimTime::from_secs(180));
        (
            app.report().mean_latency_ms(),
            app.report().replies,
            app.report().migrations.len(),
        )
    };
    assert_eq!(run_once(), run_once());
}
