//! Fast smoke runs of every Table-1 application through its public entry
//! point (the full-size experiments live in `crates/bench/benches/`).

use plasma_apps::{
    bptree, cassandra, chatroom, estore, halo, media, metadata, pagerank, piccolo, zexpander,
};
use plasma_sim::SimDuration;

#[test]
fn chatroom_smoke() {
    let r = chatroom::run(&chatroom::ChatConfig {
        users: 4,
        messages_per_user: 10,
        ..chatroom::ChatConfig::default()
    });
    assert!(r.makespan < SimDuration::from_secs(3_600));
}

#[test]
fn metadata_smoke() {
    let r = metadata::run(&metadata::MetadataConfig {
        folders: 2,
        files_per_folder: 2,
        clients: 4,
        run_for: SimDuration::from_secs(60),
        ..metadata::MetadataConfig::default()
    });
    assert!(r.before_ms > 0.0);
}

#[test]
fn pagerank_smoke() {
    let r = pagerank::run(&pagerank::PageRankConfig {
        vertices: 2_000,
        attach: 4,
        partitions: 8,
        servers: 2,
        max_iters: 5,
        ..pagerank::PageRankConfig::default()
    });
    assert_eq!(r.iteration_times.len(), 5);
    assert!(r.final_delta.is_finite());
}

#[test]
fn estore_smoke() {
    let r = estore::run(&estore::EstoreConfig {
        roots: 8,
        children_per_root: 2,
        clients: 8,
        run_for: SimDuration::from_secs(80),
        ..estore::EstoreConfig::default()
    });
    assert!(r.tail_ms > 0.0);
}

#[test]
fn media_smoke() {
    let r = media::run(&media::MediaConfig {
        clients: 12,
        max_servers: 12,
        run_for: SimDuration::from_secs(700),
        leave_mean: SimDuration::from_secs(500),
        ..media::MediaConfig::default()
    });
    assert!(r.mean_ms > 0.0);
    assert!(r.peak_servers >= 4);
}

#[test]
fn halo_smoke() {
    let r = halo::run(&halo::HaloConfig {
        clients: 8,
        rounds: 2,
        round_len: SimDuration::from_secs(60),
        ..halo::HaloConfig::default()
    });
    assert!(r.mean_ms > 0.0);
    assert_eq!(
        r.colocated.0, r.colocated.1,
        "inter-rule colocates everyone"
    );
}

#[test]
fn bptree_smoke() {
    let r = bptree::run(&bptree::BptreeConfig {
        fanout: 2,
        leaves_per_inner: 2,
        clients: 4,
        run_for: SimDuration::from_secs(80),
        ..bptree::BptreeConfig::default()
    });
    assert!(r.lookups > 0);
}

#[test]
fn piccolo_smoke() {
    let r = piccolo::run(&piccolo::PiccoloConfig {
        workers: 4,
        servers: 2,
        run_for: SimDuration::from_secs(80),
        ..piccolo::PiccoloConfig::default()
    });
    assert!(r.colocated > 0);
}

#[test]
fn zexpander_smoke() {
    let r = zexpander::run(&zexpander::ZexpanderConfig {
        leaves: 4,
        clients: 8,
        run_for: SimDuration::from_secs(120),
        ..zexpander::ZexpanderConfig::default()
    });
    assert!(r.before_after_ms.0 > 0.0);
}

#[test]
fn cassandra_smoke() {
    let r = cassandra::run(&cassandra::CassandraConfig {
        tables: 2,
        replication: 2,
        servers: 3,
        clients: 4,
        run_for: SimDuration::from_secs(80),
        ..cassandra::CassandraConfig::default()
    });
    assert_eq!(r.tables, 2);
}
