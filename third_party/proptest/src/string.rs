//! String generation from a small regex subset.
//!
//! Supports what the workspace's tests use: literal characters, character
//! classes like `[a-zA-Z0-9_]`, the `\PC` "any printable" escape, and `{m,n}`
//! repetition of the preceding atom. Anything else in the pattern is treated
//! as a literal character.

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character.
    Printable,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                i += 3;
                Atom::Printable
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m,n} / {n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or(chars.len());
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(8),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            ranges.first().map(|&(lo, _)| lo).unwrap_or('a')
        }
        Atom::Printable => {
            // Mostly printable ASCII, sometimes wider Unicode (all
            // non-control, matching `\PC`).
            match rng.below(10) {
                0 => {
                    const BLOCKS: &[(u32, u32)] = &[
                        (0x00A1, 0x024F),   // Latin supplement/extended
                        (0x0391, 0x03C9),   // Greek
                        (0x0410, 0x044F),   // Cyrillic
                        (0x4E00, 0x4E80),   // CJK sample
                        (0x1F600, 0x1F64F), // emoji
                    ];
                    let (lo, hi) = BLOCKS[rng.below(BLOCKS.len() as u64) as usize];
                    char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32).unwrap_or('¡')
                }
                _ => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' '),
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn pattern_string(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = if piece.max > piece.min {
            piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
        } else {
            piece.min
        };
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_pattern_shape() {
        let mut rng = TestRng::for_case(7, 0);
        for case in 0..200 {
            let mut rng2 = TestRng::for_case(7, case);
            let s = pattern_string("[a-zA-Z][a-zA-Z0-9_]{0,6}", &mut rng2);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
        let _ = rng.next_u64();
    }

    #[test]
    fn printable_pattern_has_no_control_chars() {
        for case in 0..100 {
            let mut rng = TestRng::for_case(11, case);
            let s = pattern_string("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }
}
