//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, tuple and numeric-range strategies, regex-like
//! string strategies, `collection::vec`, `option::of`, `Just`, `prop_oneof!`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//! - Input generation is **deterministic**: the RNG is seeded from the test's
//!   module path and name plus the case index, so every run explores the same
//!   inputs (a reproducibility property the rest of the workspace shares).
//! - No shrinking. On failure the harness prints the case index; re-running
//!   reproduces it exactly.
//! - No persistence: `*.proptest-regressions` files are not read or written.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

mod macros;

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
