//! Deterministic RNG and per-block configuration for the test macros.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a, used to derive a stable seed from the test's full name.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A splitmix64 generator: tiny, fast, and good enough for input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream for one test case; `name_seed` identifies the test and
    /// `case` its iteration index.
    pub fn for_case(name_seed: u64, case: u64) -> Self {
        let mut rng = TestRng {
            state: name_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // Discard one output so near-identical seeds decorrelate.
        rng.next_u64();
        rng
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
