//! The [`Strategy`] trait, combinators, and primitive strategies.

use std::ops::Range;
use std::rc::Rc;

use crate::string::pattern_string;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`; regenerates until one passes.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `f` wraps an
    /// inner strategy into one more level, up to `depth` levels. The size
    /// hints of the real API are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let rec = f(strat).boxed();
            strat = Union::new(vec![base.clone(), rec]).boxed();
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always generates a clone of the held value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter gave up after 10000 rejections: {}",
            self.reason
        );
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

/// String strategies from a regex-like pattern (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern_string(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
