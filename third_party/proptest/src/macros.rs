//! The `proptest!`, `prop_assert*!` and `prop_oneof!` macros.

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-style function running `config.cases` deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __name_seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __name_seed,
                        __case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(panic) = __outcome {
                        eprintln!(
                            "[proptest] {} failed at case {}/{} (name seed {:#018x})",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __name_seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!(concat!("assertion failed: ", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Uniform choice among strategies generating the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
