//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `Bencher` API shape the workspace's benches
//! use, backed by a simple adaptive timing loop: each benchmark is calibrated
//! to roughly 100 ms of measurement, and the mean time per iteration is
//! printed. No statistics machinery, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "bench {name:<44} {:>14} ns/iter ({} iters)",
            format_ns(bencher.mean_ns),
            bencher.iters,
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}", ns)
    } else {
        format!("{:.1}", ns)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    measurement: Duration,
    /// Mean nanoseconds per iteration from the last `iter` call.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count that fills the
    /// measurement window.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: time a single call (running it at least once).
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target = self.measurement.as_nanos();
        let n = (target / once.as_nanos().max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / n as f64;
        self.iters = n;
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
