//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the derive macros
//! so `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compile
//! unchanged. No code in the workspace is generic over these traits — JSON
//! serialization is done by the `serde_json` stand-in's hand-rolled writer —
//! so the traits carry no methods and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use super::Deserialize;
    pub use super::DeserializeOwned;
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}
