//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with `parking_lot`'s panic-free API: `lock()`,
//! `read()` and `write()` return guards directly, recovering the inner data
//! if a previous holder panicked (parking_lot has no poisoning).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
