//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: immutable, cheap to clone, thread-safe.
//! That covers the workspace's use (message payloads in the live cluster);
//! the real crate's zero-copy slicing and `BytesMut` are not needed.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice (no copy in the real crate; here
    /// the slice is copied once into the shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}
