//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real crates.io
//! dependency graph is unavailable. Nothing in the workspace consumes the
//! generated `Serialize`/`Deserialize` impls (all JSON output goes through
//! hand-rolled writers), so the derives here simply accept the input —
//! including `#[serde(...)]` helper attributes — and emit no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
