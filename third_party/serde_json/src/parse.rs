//! A strict recursive-descent JSON parser for [`Value`].

use crate::{Error, Map, Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => self.skip_ws(),
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut map = Map::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => self.skip_ws(),
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a \uXXXX low surrogate.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined).ok_or_else(|| self.err("invalid codepoint"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::Float(v)))
        } else if negative {
            let v: i64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::Number(Number::NegInt(v)))
        } else {
            let v: u64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::Number(Number::PosInt(v)))
        }
    }
}
