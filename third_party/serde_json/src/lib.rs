//! Offline stand-in for `serde_json`.
//!
//! Implements the slice of the `serde_json` API the workspace uses: the
//! [`Value`] tree with an insertion-ordered [`Map`], the [`json!`] macro,
//! [`to_string`] / [`to_string_pretty`] writers, and a strict [`from_str`]
//! parser (used by tests to validate exported trace files). Serialization is
//! deterministic: maps keep insertion order and floats print via Rust's
//! shortest-roundtrip formatting.

mod macros;
mod parse;

use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating-point number.
    Float(f64),
}

impl Number {
    /// Returns the value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Returns the value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that round-trips,
                    // and always contains a `.` or exponent for non-integers.
                    let s = format!("{v:?}");
                    f.write_str(&s)
                } else {
                    // JSON has no Inf/NaN; match serde_json's `null`.
                    f.write_str("null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any previous entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for entry in &mut self.entries {
            if entry.0 == key {
                return Some(std::mem::replace(&mut entry.1, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns whether the map holds `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Returns the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string contents if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number as `f64` if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the number as `u64` if this value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Indexes into an object by key; returns `Value::Null` when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::PosInt(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::PosInt(v as u64))
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Number(Number::PosInt(v as u64))
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::Number(Number::PosInt(v as u64))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::PosInt(v as u64))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v < 0 {
            Value::Number(Number::NegInt(v))
        } else {
            Value::Number(Number::PosInt(v as u64))
        }
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::from(v as i64)
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from(v: (A, B)) -> Self {
        Value::Array(vec![v.0.into(), v.1.into()])
    }
}
impl<A: Into<Value>, B: Into<Value>, C: Into<Value>> From<(A, B, C)> for Value {
    fn from(v: (A, B, C)) -> Self {
        Value::Array(vec![v.0.into(), v.1.into(), v.2.into()])
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

/// Serializes a value to a compact JSON string.
///
/// Unlike the real `serde_json::to_string` this operates on [`Value`] (the
/// only type the workspace serializes); the `Result` shape is kept for
/// call-site compatibility.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Parses a JSON document into a [`Value`]. Strict: rejects trailing input,
/// trailing commas, and malformed literals.
pub fn from_str(input: &str) -> Result<Value, Error> {
    parse::parse(input)
}

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = json!({
            "name": "plasma",
            "count": 3u64,
            "ratio": 0.5,
            "tags": ["a", "b"],
            "nested": { "ok": true, "none": null },
        });
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        assert_eq!(to_string(&Value::Object(m)).unwrap(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("[1] x").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn tuples_become_arrays() {
        let series: Vec<(f64, f64)> = vec![(0.0, 1.5), (2.0, 3.5)];
        let v = json!({ "series": series });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"series":[[0.0,1.5],[2.0,3.5]]}"#
        );
    }
}
