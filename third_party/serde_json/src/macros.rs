//! The `json!` macro: a tt-muncher modeled on the canonical `serde_json`
//! implementation, reduced to build this crate's [`Value`] via `Into<Value>`
//! instead of going through serde `Serialize`.

/// Builds a [`crate::Value`] from JSON-like syntax.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////////
    // Array muncher: builds a `vec![...]` of Values.
    //////////////////////////////////////////////////////////////////////////

    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////////
    // Object muncher: inserts key/value pairs into `$object`.
    // State: (@object $map (current key tokens) (remaining tokens))
    //////////////////////////////////////////////////////////////////////////

    (@object $object:ident () () ()) => {};

    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Current entry followed by unexpected token.
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected);
    };
    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };

    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is an object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Missing value for last entry.
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        $crate::json_internal!();
    };
    // Missing colon and value.
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        $crate::json_internal!();
    };
    // Misplaced colon.
    (@object $object:ident () (: $($rest:tt)*) ($colon:tt $($copy:tt)*)) => {
        $crate::json_unexpected!($colon);
    };
    // Found a comma inside a key.
    (@object $object:ident ($($key:tt)*) (, $($rest:tt)*) ($comma:tt $($copy:tt)*)) => {
        $crate::json_unexpected!($comma);
    };
    // Key is fully parenthesized (an expression as a key).
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////////////////////////////////////////////////////////
    // Entry points.
    //////////////////////////////////////////////////////////////////////////

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_unexpected {
    () => {};
}
