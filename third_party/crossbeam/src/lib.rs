//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (`Sender` is `Sync` since Rust 1.72, which is what the live-cluster router
//! relies on). Semantics match where the workspace depends on them: bounded
//! channels block the sender when full, `recv` blocks, `recv_timeout` times
//! out.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Multi-producer sender half, unified over bounded/unbounded channels.
    pub enum Sender<T> {
        /// Unbounded queue.
        Unbounded(mpsc::Sender<T>),
        /// Rendezvous/bounded queue; `send` blocks when full.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if the channel is bounded and full.
        /// Errors when all receivers have disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiver half.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { rx })
    }

    /// Creates a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { rx })
    }

    /// The channel is disconnected; returns the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like the real crate: no `T: Debug` bound, the payload is elided.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Timed receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Non-blocking receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }
}
